//! The expression tree and its evaluation / analysis methods.

use lafp_columnar::column::{ArithOp, CmpOp, Column, DtField, StrOp};
use lafp_columnar::{Bitmap, ColumnarError, DataFrame, Result, Scalar};
use std::collections::BTreeSet;
use std::fmt;

/// A row-level expression over the columns of one dataframe.
///
/// This is what filter predicates and computed-column definitions carry in
/// the LaFP task graph, and what the runtime optimizer inspects to decide
/// whether a filter can be swapped below an operator (§3.2's
/// `used_attrs` / `mod_attrs` conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the input frame.
    Col(String),
    /// A literal scalar.
    Lit(Scalar),
    /// Comparison between two sub-expressions.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Arithmetic between two sub-expressions.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Datetime accessor (`expr.dt.<field>`).
    Dt(Box<Expr>, DtField),
    /// String accessor (`expr.str.<op>`).
    Str(Box<Expr>, StrOp),
    /// Null test (`expr.isna()`).
    IsNull(Box<Expr>),
    /// Non-null test (`expr.notna()`).
    NotNull(Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
    /// Round to n decimal places.
    Round(Box<Expr>, i32),
    /// Replace nulls with a literal (`expr.fillna(lit)`).
    FillNa(Box<Expr>, Scalar),
    /// Cast (`expr.astype(dtype)`).
    Cast(Box<Expr>, lafp_columnar::DType),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Integer literal.
    pub fn lit_int(v: i64) -> Expr {
        Expr::Lit(Scalar::Int(v))
    }

    /// Float literal.
    pub fn lit_float(v: f64) -> Expr {
        Expr::Lit(Scalar::Float(v))
    }

    /// String literal.
    pub fn lit_str(v: impl Into<String>) -> Expr {
        Expr::Lit(Scalar::Str(v.into()))
    }

    /// `self <op> rhs` comparison.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), op, Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `self <op> rhs` arithmetic.
    pub fn arith(self, op: ArithOp, rhs: Expr) -> Expr {
        Expr::Arith(Box::new(self), op, Box::new(rhs))
    }

    /// Conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Datetime accessor.
    pub fn dt(self, field: DtField) -> Expr {
        Expr::Dt(Box::new(self), field)
    }

    /// String accessor.
    pub fn str_op(self, op: StrOp) -> Expr {
        Expr::Str(Box::new(self), op)
    }

    // -- analysis --------------------------------------------------------

    /// The set of input columns this expression reads — the paper's
    /// `used_attrs` for predicate-pushdown safe points (§3.2).
    pub fn used_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e)
            | Expr::Dt(e, _)
            | Expr::Str(e, _)
            | Expr::IsNull(e)
            | Expr::NotNull(e)
            | Expr::Abs(e)
            | Expr::Round(e, _)
            | Expr::FillNa(e, _)
            | Expr::Cast(e, _) => e.collect_columns(out),
        }
    }

    /// Rewrite column references through a renaming map (used when pushing
    /// a predicate below a `rename` operator: the predicate must refer to
    /// the pre-rename column names).
    pub fn substitute(&self, map: &dyn Fn(&str) -> Option<String>) -> Expr {
        match self {
            Expr::Col(name) => Expr::Col(map(name).unwrap_or_else(|| name.clone())),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(a, op, b) => Expr::Cmp(
                Box::new(a.substitute(map)),
                *op,
                Box::new(b.substitute(map)),
            ),
            Expr::Arith(a, op, b) => Expr::Arith(
                Box::new(a.substitute(map)),
                *op,
                Box::new(b.substitute(map)),
            ),
            Expr::And(a, b) => a.substitute(map).and(b.substitute(map)),
            Expr::Or(a, b) => a.substitute(map).or(b.substitute(map)),
            Expr::Not(e) => !e.substitute(map),
            Expr::Dt(e, f) => e.substitute(map).dt(*f),
            Expr::Str(e, o) => e.substitute(map).str_op(o.clone()),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.substitute(map))),
            Expr::NotNull(e) => Expr::NotNull(Box::new(e.substitute(map))),
            Expr::Abs(e) => Expr::Abs(Box::new(e.substitute(map))),
            Expr::Round(e, d) => Expr::Round(Box::new(e.substitute(map)), *d),
            Expr::FillNa(e, v) => Expr::FillNa(Box::new(e.substitute(map)), v.clone()),
            Expr::Cast(e, t) => Expr::Cast(Box::new(e.substitute(map)), *t),
        }
    }

    /// Structural 64-bit fingerprint: equal expressions fingerprint equal.
    /// Used (with input-node identity) for common-subexpression detection.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        self.hash_into(&mut h);
        h
    }

    fn hash_into(&self, h: &mut u64) {
        let mix = |h: &mut u64, v: u64| {
            *h = (*h ^ v).wrapping_mul(0x100000001b3);
        };
        let mix_str = |h: &mut u64, s: &str| {
            for b in s.as_bytes() {
                mix(h, *b as u64);
            }
            mix(h, 0xFF);
        };
        match self {
            Expr::Col(name) => {
                mix(h, 1);
                mix_str(h, name);
            }
            Expr::Lit(v) => {
                mix(h, 2);
                mix_str(h, &format!("{v:?}"));
            }
            Expr::Cmp(a, op, b) => {
                mix(h, 3);
                mix(h, *op as u64);
                a.hash_into(h);
                b.hash_into(h);
            }
            Expr::Arith(a, op, b) => {
                mix(h, 4);
                mix(h, *op as u64);
                a.hash_into(h);
                b.hash_into(h);
            }
            Expr::And(a, b) => {
                mix(h, 5);
                a.hash_into(h);
                b.hash_into(h);
            }
            Expr::Or(a, b) => {
                mix(h, 6);
                a.hash_into(h);
                b.hash_into(h);
            }
            Expr::Not(e) => {
                mix(h, 7);
                e.hash_into(h);
            }
            Expr::Dt(e, f) => {
                mix(h, 8);
                mix(h, *f as u64);
                e.hash_into(h);
            }
            Expr::Str(e, o) => {
                mix(h, 9);
                mix_str(h, &format!("{o:?}"));
                e.hash_into(h);
            }
            Expr::IsNull(e) => {
                mix(h, 10);
                e.hash_into(h);
            }
            Expr::NotNull(e) => {
                mix(h, 11);
                e.hash_into(h);
            }
            Expr::Abs(e) => {
                mix(h, 12);
                e.hash_into(h);
            }
            Expr::Round(e, d) => {
                mix(h, 13);
                mix(h, *d as u64);
                e.hash_into(h);
            }
            Expr::FillNa(e, v) => {
                mix(h, 14);
                mix_str(h, &format!("{v:?}"));
                e.hash_into(h);
            }
            Expr::Cast(e, t) => {
                mix(h, 15);
                mix_str(h, &t.to_string());
                e.hash_into(h);
            }
        }
    }

    // -- evaluation -------------------------------------------------------

    /// Evaluate to a column against `frame`; scalars broadcast to the
    /// frame's row count.
    pub fn evaluate(&self, frame: &DataFrame) -> Result<Column> {
        self.evaluate_resolved(frame.num_rows(), &|name| {
            frame.column(name).map(lafp_columnar::Series::column)
        })
    }

    /// Evaluate against an arbitrary column namespace instead of a frame:
    /// `resolve` maps a column name to a borrowed column of length `rows`.
    /// This is how fused operator chains evaluate expressions over a
    /// mixed domain of input-frame columns and freshly computed scratch
    /// columns without assembling an intermediate frame. Leaf column
    /// references inside comparisons and arithmetic borrow straight from
    /// the resolver (no clone); only a bare top-level `Col` clones, since
    /// the result must be owned.
    pub fn evaluate_resolved<'a>(
        &self,
        rows: usize,
        resolve: &dyn Fn(&str) -> Result<&'a Column>,
    ) -> Result<Column> {
        match self {
            Expr::Col(name) => Ok(resolve(name)?.clone()),
            Expr::Lit(v) => Ok(Column::full(rows, v)),
            Expr::Cmp(a, op, b) => {
                let mask = match (a.as_ref(), b.as_ref()) {
                    // Fast paths: column/literal operands avoid both the
                    // broadcast literal column and the operand clone.
                    (Expr::Col(n), Expr::Lit(v)) => resolve(n)?.compare_scalar(*op, v)?,
                    (Expr::Lit(v), Expr::Col(n)) => resolve(n)?.compare_scalar(flip(*op), v)?,
                    (_, Expr::Lit(v)) => a
                        .evaluate_resolved(rows, resolve)?
                        .compare_scalar(*op, v)?,
                    (Expr::Lit(v), _) => b
                        .evaluate_resolved(rows, resolve)?
                        .compare_scalar(flip(*op), v)?,
                    _ => a
                        .evaluate_resolved(rows, resolve)?
                        .compare(*op, &b.evaluate_resolved(rows, resolve)?)?,
                };
                Ok(Column::Bool(mask, None))
            }
            Expr::Arith(a, op, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(n), Expr::Lit(v)) => resolve(n)?.arith_scalar(*op, v),
                (_, Expr::Lit(v)) => a.evaluate_resolved(rows, resolve)?.arith_scalar(*op, v),
                (Expr::Col(na), Expr::Col(nb)) => resolve(na)?.arith(*op, resolve(nb)?),
                _ => a
                    .evaluate_resolved(rows, resolve)?
                    .arith(*op, &b.evaluate_resolved(rows, resolve)?),
            },
            Expr::And(a, b) => {
                let mask = a
                    .evaluate_resolved(rows, resolve)?
                    .and(&b.evaluate_resolved(rows, resolve)?)?;
                Ok(Column::Bool(mask, None))
            }
            Expr::Or(a, b) => {
                let mask = a
                    .evaluate_resolved(rows, resolve)?
                    .or(&b.evaluate_resolved(rows, resolve)?)?;
                Ok(Column::Bool(mask, None))
            }
            Expr::Not(e) => Ok(Column::Bool(
                e.evaluate_resolved(rows, resolve)?.invert()?,
                None,
            )),
            Expr::Dt(e, f) => e.evaluate_resolved(rows, resolve)?.dt_field(*f),
            Expr::Str(e, o) => e.evaluate_resolved(rows, resolve)?.str_op(o),
            Expr::IsNull(e) => Ok(Column::Bool(
                e.evaluate_resolved(rows, resolve)?.is_null_mask(),
                None,
            )),
            Expr::NotNull(e) => Ok(Column::Bool(
                e.evaluate_resolved(rows, resolve)?.is_null_mask().not(),
                None,
            )),
            Expr::Abs(e) => e.evaluate_resolved(rows, resolve)?.abs(),
            Expr::Round(e, d) => e.evaluate_resolved(rows, resolve)?.round(*d),
            Expr::FillNa(e, v) => e.evaluate_resolved(rows, resolve)?.fillna(v),
            Expr::Cast(e, t) => e.evaluate_resolved(rows, resolve)?.cast(*t),
        }
    }

    /// Evaluate as a filter mask; errors if the expression isn't boolean.
    pub fn evaluate_mask(&self, frame: &DataFrame) -> Result<Bitmap> {
        self.evaluate_mask_resolved(frame.num_rows(), &|name| {
            frame.column(name).map(lafp_columnar::Series::column)
        })
    }

    /// [`Expr::evaluate_mask`] over a column resolver (see
    /// [`Expr::evaluate_resolved`]).
    pub fn evaluate_mask_resolved<'a>(
        &self,
        rows: usize,
        resolve: &dyn Fn(&str) -> Result<&'a Column>,
    ) -> Result<Bitmap> {
        let col = self.evaluate_resolved(rows, resolve)?;
        col.as_mask().map_err(|_| ColumnarError::TypeMismatch {
            op: format!("filter predicate {self}"),
            dtype: col.dtype().to_string(),
        })
    }

    /// Evaluate against an empty projection of `frame` — i.e. evaluate a
    /// constant expression (no column refs) to a single scalar.
    pub fn evaluate_scalar(&self) -> Result<Scalar> {
        if !self.used_columns().is_empty() {
            return Err(ColumnarError::InvalidArgument(format!(
                "expression {self} references columns; cannot evaluate as a constant"
            )));
        }
        let unit = DataFrame::new(vec![lafp_columnar::Series::new(
            "__unit",
            Column::from_i64(vec![0]),
        )])?;
        Ok(self.evaluate(&unit)?.get(0))
    }
}

impl std::ops::Not for Expr {
    type Output = Expr;

    /// Negation: `expr.not()` / `!expr` builds [`Expr::Not`].
    fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
}

/// Flip a comparison for operand swap: `lit < col` ⇔ `col > lit`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "df.{name}"),
            Expr::Lit(Scalar::Str(s)) => write!(f, "{s:?}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(a, op, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Arith(a, op, b) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                    ArithOp::Mod => "%",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::And(a, b) => write!(f, "({a} & {b})"),
            Expr::Or(a, b) => write!(f, "({a} | {b})"),
            Expr::Not(e) => write!(f, "~{e}"),
            Expr::Dt(e, field) => write!(f, "{e}.dt.{field:?}"),
            Expr::Str(e, op) => write!(f, "{e}.str.{op:?}"),
            Expr::IsNull(e) => write!(f, "{e}.isna()"),
            Expr::NotNull(e) => write!(f, "{e}.notna()"),
            Expr::Abs(e) => write!(f, "{e}.abs()"),
            Expr::Round(e, d) => write!(f, "{e}.round({d})"),
            Expr::FillNa(e, v) => write!(f, "{e}.fillna({v})"),
            Expr::Cast(e, t) => write!(f, "{e}.astype({t:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::df;

    fn frame() -> DataFrame {
        df![
            ("fare", Column::from_f64(vec![5.0, -1.0, 12.0])),
            ("tip", Column::from_f64(vec![1.0, 0.0, 2.0])),
            ("city", Column::from_strings(vec!["NY", "SF", "NY"])),
        ]
    }

    #[test]
    fn used_columns_collects_all_refs() {
        let e = Expr::col("fare")
            .gt(Expr::lit_float(0.0))
            .and(Expr::col("city").eq_(Expr::lit_str("NY")));
        let used: Vec<String> = e.used_columns().into_iter().collect();
        assert_eq!(used, vec!["city".to_string(), "fare".to_string()]);
        assert!(Expr::lit_int(1).used_columns().is_empty());
    }

    #[test]
    fn evaluate_comparison_and_logic() {
        let e = Expr::col("fare").gt(Expr::lit_float(0.0));
        let mask = e.evaluate_mask(&frame()).unwrap();
        assert_eq!(mask.set_indices(), vec![0, 2]);
        let e2 = e.and(Expr::col("city").eq_(Expr::lit_str("NY")));
        assert_eq!(e2.evaluate_mask(&frame()).unwrap().set_indices(), vec![0, 2]);
        let e3 = Expr::col("fare")
            .lt(Expr::lit_float(0.0))
            .or(Expr::col("tip").gt(Expr::lit_float(1.5)));
        assert_eq!(e3.evaluate_mask(&frame()).unwrap().set_indices(), vec![1, 2]);
        let e4 = !Expr::col("fare").gt(Expr::lit_float(0.0));
        assert_eq!(e4.evaluate_mask(&frame()).unwrap().set_indices(), vec![1]);
    }

    #[test]
    fn evaluate_arith_broadcasts_literals() {
        let e = Expr::col("fare").arith(ArithOp::Add, Expr::col("tip"));
        let c = e.evaluate(&frame()).unwrap();
        assert_eq!(c.get(0), Scalar::Float(6.0));
        let e = Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(2.0));
        assert_eq!(e.evaluate(&frame()).unwrap().get(2), Scalar::Float(24.0));
    }

    #[test]
    fn flipped_literal_on_left() {
        // 0 < fare  ==  fare > 0
        let e = Expr::lit_float(0.0).lt(Expr::col("fare"));
        assert_eq!(e.evaluate_mask(&frame()).unwrap().set_indices(), vec![0, 2]);
    }

    #[test]
    fn non_boolean_filter_rejected() {
        let e = Expr::col("fare");
        assert!(e.evaluate_mask(&frame()).is_err());
    }

    #[test]
    fn fingerprints_equal_iff_structurally_equal() {
        let a = Expr::col("fare").gt(Expr::lit_float(0.0));
        let b = Expr::col("fare").gt(Expr::lit_float(0.0));
        let c = Expr::col("fare").ge(Expr::lit_float(0.0));
        let d = Expr::col("tip").gt(Expr::lit_float(0.0));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn substitute_renames_columns() {
        let e = Expr::col("new_name").gt(Expr::lit_int(0));
        let renamed = e.substitute(&|c| {
            (c == "new_name").then(|| "old_name".to_string())
        });
        assert_eq!(
            renamed.used_columns().into_iter().collect::<Vec<_>>(),
            vec!["old_name".to_string()]
        );
    }

    #[test]
    fn null_handling_expressions() {
        let df = df![("x", Column::from_opt_f64(vec![Some(1.0), None]))];
        let isna = Expr::IsNull(Box::new(Expr::col("x")));
        assert_eq!(isna.evaluate_mask(&df).unwrap().set_indices(), vec![1]);
        let notna = Expr::NotNull(Box::new(Expr::col("x")));
        assert_eq!(notna.evaluate_mask(&df).unwrap().set_indices(), vec![0]);
        let filled = Expr::FillNa(Box::new(Expr::col("x")), Scalar::Float(9.0));
        assert_eq!(filled.evaluate(&df).unwrap().get(1), Scalar::Float(9.0));
    }

    #[test]
    fn evaluate_scalar_constants() {
        let e = Expr::lit_int(2).arith(ArithOp::Mul, Expr::lit_int(21));
        assert_eq!(e.evaluate_scalar().unwrap(), Scalar::Int(42));
        assert!(Expr::col("x").evaluate_scalar().is_err());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col("fare")
            .gt(Expr::lit_float(0.0))
            .and(Expr::col("city").eq_(Expr::lit_str("NY")));
        let text = e.to_string();
        assert!(text.contains("df.fare"));
        assert!(text.contains(">"));
        assert!(text.contains("\"NY\""));
    }

    #[test]
    fn dt_and_str_in_expressions() {
        use lafp_columnar::value::parse_datetime;
        let df = df![
            (
                "when",
                Column::from_datetimes(vec![
                    parse_datetime("2024-01-01 09:00:00").unwrap(), // Monday
                    parse_datetime("2024-01-06 09:00:00").unwrap(), // Saturday
                ])
            ),
            ("name", Column::from_strings(vec!["Alpha", "beta"])),
        ];
        let weekday = Expr::col("when").dt(DtField::DayOfWeek);
        let mask = weekday
            .clone()
            .ge(Expr::lit_int(5))
            .evaluate_mask(&df)
            .unwrap();
        assert_eq!(mask.set_indices(), vec![1]);
        let lower = Expr::col("name").str_op(StrOp::Lower);
        assert_eq!(
            lower.evaluate(&df).unwrap().get(0),
            Scalar::Str("alpha".into())
        );
    }
}
