//! AST → CFG lowering (the "python_to_SCIRPy" step of Figure 5).

use crate::ast::{Ast, StmtId, StmtKind};
use crate::cfg::{BlockId, Cfg, Terminator};

/// Lower a module to its control-flow graph. Compound statements become
/// branch/loop terminators referencing their AST node (conditions and
/// iterables stay in the AST, where the rewriter can edit them).
pub fn lower(ast: &Ast) -> Cfg {
    let mut cfg = Cfg::default();
    let entry = cfg.add_block();
    cfg.entry = entry;
    let last = lower_seq(ast, &ast.module, &mut cfg, entry);
    cfg.blocks[last].terminator = Terminator::End;
    cfg
}

/// Lower a statement sequence starting in `current`; returns the block
/// where control continues.
fn lower_seq(ast: &Ast, stmts: &[StmtId], cfg: &mut Cfg, mut current: BlockId) -> BlockId {
    for &id in stmts {
        match &ast.stmt(id).kind {
            StmtKind::Import { .. }
            | StmtKind::FromImport { .. }
            | StmtKind::Expr(_)
            | StmtKind::Assign { .. } => {
                cfg.blocks[current].stmts.push(id);
            }
            StmtKind::If { then, orelse, .. } => {
                let then_blk = cfg.add_block();
                let else_blk = cfg.add_block();
                let join = cfg.add_block();
                cfg.blocks[current].terminator = Terminator::Branch {
                    stmt: id,
                    then_blk,
                    else_blk,
                };
                let then_end = lower_seq(ast, then, cfg, then_blk);
                cfg.blocks[then_end].terminator = Terminator::Jump(join);
                let else_end = lower_seq(ast, orelse, cfg, else_blk);
                cfg.blocks[else_end].terminator = Terminator::Jump(join);
                current = join;
            }
            StmtKind::For { body, .. } => {
                let header = cfg.add_block();
                let body_blk = cfg.add_block();
                let exit = cfg.add_block();
                cfg.blocks[current].terminator = Terminator::Jump(header);
                cfg.blocks[header].terminator = Terminator::LoopBranch {
                    stmt: id,
                    body: body_blk,
                    exit,
                };
                let body_end = lower_seq(ast, body, cfg, body_blk);
                cfg.blocks[body_end].terminator = Terminator::Jump(header);
                current = exit;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn nested_structures_lower_without_panic() {
        let src = "\
x = 1
for i in xs:
    if i > 0:
        y = i
    else:
        y = 0
    z = y
if x > 0:
    w = 1
done = 1
";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        // Every simple statement appears exactly once across blocks.
        let placed: usize = cfg.blocks.iter().map(|b| b.stmts.len()).sum();
        let simple = ast
            .all_ids()
            .filter(|&id| {
                !matches!(
                    ast.stmt(id).kind,
                    StmtKind::If { .. } | StmtKind::For { .. }
                )
            })
            .count();
        assert_eq!(placed, simple);
        // Exactly one End terminator.
        let ends = cfg
            .blocks
            .iter()
            .filter(|b| b.terminator == Terminator::End)
            .count();
        assert_eq!(ends, 1);
    }

    #[test]
    fn empty_module() {
        let ast = parse("").unwrap();
        let cfg = lower(&ast);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].terminator, Terminator::End);
    }

    #[test]
    fn elif_chain_produces_nested_diamonds() {
        let src = "\
if a > 0:
    x = 1
elif a < 0:
    x = 2
else:
    x = 3
";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let branches = cfg
            .blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 2, "outer if + nested elif");
    }
}
