//! End-to-end encoded-execution telemetry check.
//!
//! Runs the canonical low-cardinality query — CSV ingest, an equality
//! filter on the category column, a code-keyed group-by sum — and
//! asserts through the [`lafp_meta::encoding`] facade that every
//! operator stayed on its encoded fast path: the ingest layer
//! dictionary-encoded the category column, and **zero** decode
//! fallbacks were taken anywhere in the pipeline.
//!
//! Lives in its own integration-test binary because the counters are
//! process-global; sharing a process with unrelated tests would make
//! the zero-fallback assertion racy.

use lafp_columnar::column::CmpOp;
use lafp_columnar::csv::{read_csv, CsvOptions};
use lafp_columnar::groupby::group_by;
use lafp_columnar::{AggKind, Column, GroupBySpec, Scalar};

const ROWS: usize = 4096;
const CATEGORIES: [&str; 8] = ["ad", "click", "view", "buy", "hover", "scroll", "close", "open"];

fn write_fixture(path: &std::path::Path) {
    let mut out = String::from("event,amount\n");
    for i in 0..ROWS {
        out.push_str(CATEGORIES[i % CATEGORIES.len()]);
        out.push(',');
        out.push_str(&(i as i64 % 97).to_string());
        out.push('\n');
    }
    std::fs::write(path, out).unwrap();
}

#[test]
fn low_cardinality_query_takes_zero_decode_fallbacks() {
    let dir = std::env::temp_dir().join(format!("lafp_enc_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("events.csv");
    write_fixture(&csv);

    lafp_meta::encoding::reset();
    let frame = read_csv(&csv, &CsvOptions::new()).unwrap();

    let ingest = lafp_meta::encoding::snapshot();
    if lafp_meta::encoding::enabled() {
        // Auto-detection must have dictionary-encoded the category
        // column at ingest and recorded the shrink.
        assert!(
            matches!(frame.column("event").unwrap().column(), Column::Dict(..)),
            "low-cardinality string column should ingest dictionary-encoded"
        );
        assert!(ingest.dict_columns >= 1);
        assert!(ingest.bytes_saved > 0);
    } else {
        // LAFP_NO_ENCODE=1: the escape hatch leaves columns plain and
        // the counters untouched.
        assert!(matches!(
            frame.column("event").unwrap().column(),
            Column::Utf8(..)
        ));
        assert_eq!(ingest.dict_columns, 0);
    }

    // The query itself: filter one category out, then sum per category.
    lafp_meta::encoding::reset();
    let mask = frame
        .column("event")
        .unwrap()
        .column()
        .compare_scalar(CmpOp::Ne, &Scalar::Str("close".to_string()))
        .unwrap();
    let kept = frame.filter(&mask).unwrap();
    let spec = GroupBySpec {
        keys: vec!["event".to_string()],
        value: "amount".to_string(),
        agg: AggKind::Sum,
    };
    let grouped = group_by(&kept, &spec).unwrap();

    // Correctness: 7 surviving categories, totals match a scalar replay.
    assert_eq!(grouped.num_rows(), CATEGORIES.len() - 1);
    let mut expected: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
    for i in 0..ROWS {
        let cat = CATEGORIES[i % CATEGORIES.len()];
        if cat != "close" {
            *expected.entry(cat).or_insert(0) += i as i64 % 97;
        }
    }
    let keys = grouped.column("event").unwrap().column();
    let sums = grouped.column("amount").unwrap().column();
    for i in 0..grouped.num_rows() {
        let k = match keys.get(i) {
            Scalar::Str(s) => s,
            other => panic!("string key expected, got {other:?}"),
        };
        match sums.get(i) {
            Scalar::Int(v) => assert_eq!(v, expected[k.as_str()], "sum mismatch for {k}"),
            other => panic!("int sum expected, got {other:?}"),
        }
    }

    // Telemetry: the filter ran once-per-dict-entry on codes and the
    // group-by took the dense code-keyed path — no operator expanded an
    // encoded column.
    let snap = lafp_meta::encoding::snapshot();
    assert_eq!(
        snap.decode_fallbacks, 0,
        "encoded fast paths must cover the whole low-cardinality query"
    );

    std::fs::remove_dir_all(&dir).ok();
}
