//! Property-based tests on expression evaluation invariants.

use lafp_columnar::column::{ArithOp, CmpOp, Column};
use lafp_columnar::{DataFrame, Scalar, Series};
use lafp_expr::Expr;
use proptest::prelude::*;

fn frame(values: &[i64]) -> DataFrame {
    DataFrame::new(vec![Series::new("x", Column::from_i64(values.to_vec()))]).unwrap()
}

proptest! {
    /// A predicate and its negation partition the rows.
    #[test]
    fn negation_partitions(values in prop::collection::vec(-100i64..100, 0..150), t in -100i64..100) {
        let df = frame(&values);
        let p = Expr::col("x").gt(Expr::lit_int(t));
        let m = p.clone().evaluate_mask(&df).unwrap();
        let n = (!p).evaluate_mask(&df).unwrap();
        prop_assert_eq!(m.count_set() + n.count_set(), values.len());
        prop_assert_eq!(m.and(&n).count_set(), 0);
    }

    /// `a & b` is the intersection of the individual masks, `a | b` the union.
    #[test]
    fn conjunction_is_intersection(values in prop::collection::vec(-100i64..100, 0..150),
                                   lo in -100i64..0, hi in 0i64..100) {
        let df = frame(&values);
        let a = Expr::col("x").ge(Expr::lit_int(lo));
        let b = Expr::col("x").le(Expr::lit_int(hi));
        let both = a.clone().and(b.clone()).evaluate_mask(&df).unwrap();
        let either = a.clone().or(b.clone()).evaluate_mask(&df).unwrap();
        let ma = a.evaluate_mask(&df).unwrap();
        let mb = b.evaluate_mask(&df).unwrap();
        prop_assert_eq!(&both, &ma.and(&mb));
        prop_assert_eq!(&either, &ma.or(&mb));
    }

    /// Filter commutes with row-wise arithmetic: computing a column then
    /// filtering equals filtering then computing — the §3.2 pushdown
    /// safety condition for WithColumn, checked semantically.
    #[test]
    fn pushdown_semantics_hold(values in prop::collection::vec(-50i64..50, 0..120)) {
        let df = frame(&values);
        let derived = Expr::col("x").arith(ArithOp::Mul, Expr::lit_int(2));
        let pred = Expr::col("x").gt(Expr::lit_int(0));
        // compute-then-filter
        let with = df.with_column("y", derived.evaluate(&df).unwrap()).unwrap();
        let a = with.filter(&pred.evaluate_mask(&with).unwrap()).unwrap();
        // filter-then-compute
        let filtered = df.filter(&pred.evaluate_mask(&df).unwrap()).unwrap();
        let b = filtered
            .with_column("y", derived.evaluate(&filtered).unwrap())
            .unwrap();
        prop_assert_eq!(a, b);
    }

    /// Comparison operators agree with Rust's integer ordering.
    #[test]
    fn comparisons_match_rust(values in prop::collection::vec(-100i64..100, 1..100), t in -100i64..100) {
        let df = frame(&values);
        for (op, f) in [
            (CmpOp::Eq, Box::new(move |v: i64| v == t) as Box<dyn Fn(i64) -> bool>),
            (CmpOp::Ne, Box::new(move |v| v != t)),
            (CmpOp::Lt, Box::new(move |v| v < t)),
            (CmpOp::Le, Box::new(move |v| v <= t)),
            (CmpOp::Gt, Box::new(move |v| v > t)),
            (CmpOp::Ge, Box::new(move |v| v >= t)),
        ] {
            let mask = Expr::col("x").cmp(op, Expr::lit_int(t)).evaluate_mask(&df).unwrap();
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(mask.get(i), f(v), "{:?} {} {}", op, v, t);
            }
        }
    }

    /// Fingerprints are stable under cloning and differ for different
    /// thresholds (no trivial collisions on this family).
    #[test]
    fn fingerprint_stability(t1 in -1000i64..1000, t2 in -1000i64..1000) {
        let a = Expr::col("x").gt(Expr::lit_int(t1));
        prop_assert_eq!(a.fingerprint(), a.clone().fingerprint());
        let b = Expr::col("x").gt(Expr::lit_int(t2));
        if t1 != t2 {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        } else {
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    /// Scalar folding: constant expressions evaluate like i64 arithmetic.
    #[test]
    fn constant_folding_matches(a in -1000i64..1000, b in 1i64..1000) {
        let sum = Expr::lit_int(a).arith(ArithOp::Add, Expr::lit_int(b));
        prop_assert_eq!(sum.evaluate_scalar().unwrap(), Scalar::Int(a + b));
        let div = Expr::lit_int(a).arith(ArithOp::Div, Expr::lit_int(b));
        prop_assert_eq!(div.evaluate_scalar().unwrap(), Scalar::Float(a as f64 / b as f64));
    }
}
