//! Greedy trace minimization.
//!
//! Given a failing trace, repeatedly try structure-reducing edits —
//! truncate the op tail, drop single ops, halve row counts, drop
//! columns, strip the CSV route, strip nulls and encodings — keeping
//! any edit that still fails, until a full pass accepts nothing (or
//! the re-execution budget runs out). Ops address columns modulo the
//! live schema, so every edited trace is still a valid trace.

use super::exec::{FuzzConfig, Mutation};
use super::trace::{Enc, Trace};

/// Upper bound on re-executions during one shrink (a runaway guard;
/// typical shrinks finish in well under a hundred).
const MAX_ATTEMPTS: usize = 300;

struct Shrinker<'a> {
    cfg: &'a FuzzConfig,
    mutation: Mutation,
    attempts: usize,
}

impl Shrinker<'_> {
    fn fails(&mut self, t: &Trace) -> bool {
        if self.attempts >= MAX_ATTEMPTS {
            return false;
        }
        self.attempts += 1;
        super::run_case(t, self.cfg, self.mutation).is_err()
    }

    /// Try one edit; returns the edited trace if it still fails.
    fn try_edit(&mut self, base: &Trace, edit: impl FnOnce(&mut Trace)) -> Option<Trace> {
        let mut t = base.clone();
        edit(&mut t);
        if t != *base && self.fails(&t) {
            Some(t)
        } else {
            None
        }
    }
}

/// Minimize a failing trace under `cfg`. The result is guaranteed to
/// still fail (the original is returned unchanged if nothing smaller
/// does).
pub fn shrink(trace: &Trace, cfg: &FuzzConfig, mutation: Mutation) -> Trace {
    let mut s = Shrinker {
        cfg,
        mutation,
        attempts: 0,
    };
    let mut cur = trace.clone();
    'outer: loop {
        if s.attempts >= MAX_ATTEMPTS {
            return cur;
        }
        // 1. Shortest failing op prefix (finds it in one sweep when the
        //    failure is op-local).
        for k in 0..cur.ops.len() {
            if let Some(t) = s.try_edit(&cur, |t| t.ops.truncate(k)) {
                cur = t;
                continue 'outer;
            }
        }
        // 2. Drop interior ops one at a time.
        for i in (0..cur.ops.len()).rev() {
            if let Some(t) = s.try_edit(&cur, |t| {
                t.ops.remove(i);
            }) {
                cur = t;
                continue 'outer;
            }
        }
        // 3. Halve row counts.
        if cur.main.rows > 0 {
            if let Some(t) = s.try_edit(&cur, |t| t.main.rows /= 2) {
                cur = t;
                continue 'outer;
            }
        }
        if cur.aux.rows > 0 {
            if let Some(t) = s.try_edit(&cur, |t| t.aux.rows /= 2) {
                cur = t;
                continue 'outer;
            }
        }
        // 4. Drop columns (keep at least one per frame; the join-key
        //    dtype normalization is re-derived on the next decode, so
        //    re-normalize here to keep the trace canonical).
        for i in (1..cur.main.cols.len()).rev() {
            if let Some(t) = s.try_edit(&cur, |t| {
                t.main.cols.remove(i);
            }) {
                cur = t;
                continue 'outer;
            }
        }
        if cur.main.cols.len() > 1 {
            if let Some(t) = s.try_edit(&cur, |t| {
                t.main.cols.remove(0);
                t.aux.cols[0].kind = t.main.cols[0].kind;
            }) {
                cur = t;
                continue 'outer;
            }
        }
        for i in (1..cur.aux.cols.len()).rev() {
            if let Some(t) = s.try_edit(&cur, |t| {
                t.aux.cols.remove(i);
            }) {
                cur = t;
                continue 'outer;
            }
        }
        // 5. Simplify the environment: no CSV route, no nulls, no
        //    encodings.
        if cur.via_csv {
            if let Some(t) = s.try_edit(&cur, |t| t.via_csv = false) {
                cur = t;
                continue 'outer;
            }
        }
        for i in 0..cur.main.cols.len() {
            if cur.main.cols[i].null_every != 0 {
                if let Some(t) = s.try_edit(&cur, |t| t.main.cols[i].null_every = 0) {
                    cur = t;
                    continue 'outer;
                }
            }
            if cur.main.cols[i].enc != Enc::Plain {
                if let Some(t) = s.try_edit(&cur, |t| t.main.cols[i].enc = Enc::Plain) {
                    cur = t;
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}
