//! Hash joins (pandas `merge`).

use crate::column::{Column, ColumnBuilder};
use crate::error::{ColumnarError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use std::collections::HashMap;
/// Join kinds supported by `merge(..., how=...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Keep only matching rows.
    Inner,
    /// Keep every left row; right columns are null when unmatched.
    Left,
}

impl JoinKind {
    /// Parse the pandas `how=` value.
    pub fn parse(name: &str) -> Option<JoinKind> {
        match name {
            "inner" => Some(JoinKind::Inner),
            "left" => Some(JoinKind::Left),
            _ => None,
        }
    }

    /// The `how=` spelling.
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::Left => "left",
        }
    }
}

/// Hash-join `left` and `right` on equality of the named key columns
/// (`on` must exist on both sides, like pandas `merge(on=...)`).
///
/// Non-key columns that exist on both sides get pandas-style `_x` / `_y`
/// suffixes. The right side is the build side; output preserves left row
/// order (then right match order), matching pandas.
pub fn merge(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
) -> Result<DataFrame> {
    if on.is_empty() {
        return Err(ColumnarError::InvalidArgument(
            "merge requires at least one key".into(),
        ));
    }
    for k in on {
        left.column(k)?;
        right.column(k)?;
    }

    // Build: key string -> right row indices.
    let right_keys = key_strings(right, on)?;
    let mut build: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, k) in right_keys.iter().enumerate() {
        build.entry(k.as_str()).or_default().push(i);
    }

    // Probe with the left side.
    let left_keys = key_strings(left, on)?;
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for (i, k) in left_keys.iter().enumerate() {
        match build.get(k.as_str()) {
            Some(matches) => {
                for &j in matches {
                    left_idx.push(i);
                    right_idx.push(Some(j));
                }
            }
            None => {
                if how == JoinKind::Left {
                    left_idx.push(i);
                    right_idx.push(None);
                }
            }
        }
    }

    // Assemble output columns.
    let mut out: Vec<Series> = Vec::new();
    let key_set: std::collections::HashSet<&str> = on.iter().map(String::as_str).collect();
    let overlap: std::collections::HashSet<&str> = left
        .column_names()
        .into_iter()
        .filter(|n| !key_set.contains(n) && right.has_column(n))
        .collect();

    for s in left.series() {
        let name = if overlap.contains(s.name()) {
            format!("{}_x", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, s.column().take(&left_idx)?));
    }
    for s in right.series() {
        if key_set.contains(s.name()) {
            continue; // key columns come from the left side
        }
        let name = if overlap.contains(s.name()) {
            format!("{}_y", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, gather_optional(s.column(), &right_idx)?));
    }
    DataFrame::new(out)
}

/// Canonical per-row key strings for the join columns.
fn key_strings(frame: &DataFrame, on: &[String]) -> Result<Vec<String>> {
    let cols: Vec<&Series> = on
        .iter()
        .map(|k| frame.column(k))
        .collect::<Result<Vec<_>>>()?;
    Ok((0..frame.num_rows())
        .map(|i| {
            cols.iter()
                .map(|s| s.get(i).to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        })
        .collect())
}

/// Gather with `None` producing a null row (for left-join misses).
fn gather_optional(col: &Column, indices: &[Option<usize>]) -> Result<Column> {
    if indices.iter().all(Option::is_some) {
        let idx: Vec<usize> = indices.iter().map(|i| i.unwrap()).collect();
        return col.take(&idx);
    }
    let mut b = ColumnBuilder::new(col.dtype());
    for ix in indices {
        match ix {
            Some(i) => b.push_scalar(&col.get(*i))?,
            None => b.push_null(),
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::df;
    use crate::value::Scalar;

    fn ratings() -> DataFrame {
        df![
            ("movie_id", Column::from_i64(vec![1, 2, 1, 3])),
            ("rating", Column::from_f64(vec![4.0, 3.5, 5.0, 2.0])),
        ]
    }

    fn titles() -> DataFrame {
        df![
            ("movie_id", Column::from_i64(vec![1, 2, 4])),
            ("title", Column::from_strings(vec!["Heat", "Tron", "Solaris"])),
        ]
    }

    #[test]
    fn inner_join_matches_only() {
        let out = merge(&ratings(), &titles(), &["movie_id".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3); // movie 3 has no title; movie 4 no rating
        assert_eq!(out.column_names(), vec!["movie_id", "rating", "title"]);
        assert_eq!(out.column("title").unwrap().get(0), Scalar::Str("Heat".into()));
        // left order preserved: rows for movie 1, 2, 1
        assert_eq!(out.column("movie_id").unwrap().get(2), Scalar::Int(1));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let out = merge(&ratings(), &titles(), &["movie_id".into()], JoinKind::Left).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert!(out.column("title").unwrap().column().is_null_at(3));
    }

    #[test]
    fn one_to_many_duplicates_probe_rows() {
        let dup_titles = df![
            ("movie_id", Column::from_i64(vec![1, 1])),
            ("title", Column::from_strings(vec!["Heat", "Heat (1995)"])),
        ];
        let out = merge(&ratings(), &dup_titles, &["movie_id".into()], JoinKind::Inner).unwrap();
        // movie 1 appears twice on the left, twice on the right => 4 rows
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn overlapping_columns_get_suffixes() {
        let left = df![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_i64(vec![10])),
        ];
        let right = df![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_i64(vec![20])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.column_names(), vec!["k", "v_x", "v_y"]);
        assert_eq!(out.column("v_x").unwrap().get(0), Scalar::Int(10));
        assert_eq!(out.column("v_y").unwrap().get(0), Scalar::Int(20));
    }

    #[test]
    fn multi_key_join() {
        let left = df![
            ("a", Column::from_strings(vec!["x", "x"])),
            ("b", Column::from_i64(vec![1, 2])),
            ("v", Column::from_i64(vec![10, 20])),
        ];
        let right = df![
            ("a", Column::from_strings(vec!["x"])),
            ("b", Column::from_i64(vec![2])),
            ("w", Column::from_i64(vec![99])),
        ];
        let out = merge(&left, &right, &["a".into(), "b".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(20));
    }

    #[test]
    fn missing_key_errors() {
        assert!(merge(&ratings(), &titles(), &["nope".into()], JoinKind::Inner).is_err());
        assert!(merge(&ratings(), &titles(), &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn join_kind_parse() {
        assert_eq!(JoinKind::parse("inner"), Some(JoinKind::Inner));
        assert_eq!(JoinKind::parse("left"), Some(JoinKind::Left));
        assert_eq!(JoinKind::parse("outer"), None);
        assert_eq!(JoinKind::Inner.name(), "inner");
    }
}
