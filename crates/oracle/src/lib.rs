//! # lafp-oracle
//!
//! The conformance substrate: frozen seed-semantics reference
//! implementations of every kernel ([`mod@reference`]), representation-
//! agnostic result comparison ([`equiv`]), and a byte-driven
//! differential fuzzer ([`fuzz`]) that generates random frame plans and
//! op sequences, executes them on both the references and the real
//! engine across an execution-config matrix, and shrinks any divergence
//! to a minimal replayable hex trace.
//!
//! The references are the single source of truth consumed by
//! `crates/columnar/tests/differential.rs`,
//! `crates/columnar/tests/encoding_differential.rs`, and
//! `crates/bench/src/kernel_bench.rs` — the bench suite times exactly
//! the code the tests verify against.

#![warn(missing_docs)]

pub mod equiv;
pub mod fuzz;
pub mod reference;
