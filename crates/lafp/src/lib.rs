//! # Lazy Fat Pandas (LaFP)
//!
//! A from-scratch Rust reproduction of *"Efficient Dataframe Systems:
//! Lazy Fat Pandas on a Diet"* (EDBT 2026): write plain eager
//! dataframe programs; LaFP's JIT static analysis rewrites them and a
//! lazy task-graph runtime executes them — on a Pandas-like, Modin-like
//! or Dask-like backend — with database-style optimizations: column
//! selection, predicate pushdown, lazy print, forced computation for
//! external APIs, and common computation reuse.
//!
//! ## Quick start (lazy dataframe API)
//!
//! ```
//! use lafp::core::{LaFP, LafpConfig};
//! use lafp::expr::Expr;
//! use lafp::columnar::AggKind;
//!
//! # fn main() -> lafp::columnar::Result<()> {
//! # let dir = std::env::temp_dir().join("lafp-doc");
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let path = dir.join("trips.csv");
//! # std::fs::write(&path, "fare_amount,passenger_count,day\n5.5,2,1\n-1.0,1,2\n7.0,3,1\n").unwrap();
//! let pd = LaFP::new(); // Dask-like backend by default
//! let df = pd.read_csv(&path);
//! let df = df.filter(Expr::col("fare_amount").gt(Expr::lit_float(0.0)));
//! let by_day = df.groupby_agg(vec!["day".into()], "passenger_count", AggKind::Sum);
//! by_day.print();                    // lazy print: nothing runs yet
//! pd.flush()?;                       // one batched pass computes it all
//! assert_eq!(pd.take_output().len(), 1);
//! # Ok(()) }
//! ```
//!
//! ## Quick start (whole programs)
//!
//! PandaScript programs — plain Pandas code with the paper's two-line
//! change — are rewritten by [`rewrite::analyze`] (JIT static analysis,
//! Figure 5) and executed by [`interp::Interp`] on any backend. See the
//! `examples/` directory.

#![warn(missing_docs)]

pub use lafp_analysis as analysis;
pub use lafp_backends as backends;
pub use lafp_columnar as columnar;
pub use lafp_core as core;
pub use lafp_expr as expr;
pub use lafp_interp as interp;
pub use lafp_ir as ir;
pub use lafp_meta as meta;
pub use lafp_rewrite as rewrite;
