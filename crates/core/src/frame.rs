//! The user-facing lazy dataframe (the paper's `LaFPDataFrame` /
//! `FatDataFrame`) and lazy scalar types.
//!
//! Every method records a node in the session task graph and returns a new
//! handle — nothing executes until a materialization boundary: `compute()`,
//! `flush()`, or an API that needs real data (§2.5).

use crate::context::LaFP;
use crate::exec;
use crate::graph::NodeId;
use crate::op::{LogicalOp, PrintPiece};
use lafp_columnar::column::{ArithOp, CmpOp};
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::join::JoinKind;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, DataFrame, Result, Scalar};
use lafp_expr::Expr;

/// A lazy dataframe: a handle to a task-graph node (§2.5).
#[derive(Clone)]
pub struct LazyFrame {
    ctx: LaFP,
    node: NodeId,
}

/// A lazy scalar (result of `mean()`, `sum()`, lazy `len()`, ...).
#[derive(Clone)]
pub struct LazyScalar {
    ctx: LaFP,
    node: NodeId,
}

/// One argument of a lazy `print` call: literal text or a deferred value.
pub enum PrintArg {
    /// Literal text (the non-`{}` parts of an f-string).
    Text(String),
    /// A lazy frame whose value prints when flushed.
    Frame(LazyFrame),
    /// A lazy scalar whose value prints when flushed.
    Scalar(LazyScalar),
}

impl LazyFrame {
    pub(crate) fn from_node(ctx: LaFP, node: NodeId) -> LazyFrame {
        LazyFrame { ctx, node }
    }

    /// The task-graph node this frame denotes.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The session this frame belongs to.
    pub fn session(&self) -> &LaFP {
        &self.ctx
    }

    fn derive(&self, op: LogicalOp) -> LazyFrame {
        let node = self.ctx.add_node(op, vec![self.node]);
        LazyFrame {
            ctx: self.ctx.clone(),
            node,
        }
    }

    // -- pandas API surface ------------------------------------------------

    /// `df[df.col > 0]` — row filter by boolean expression.
    pub fn filter(&self, predicate: Expr) -> LazyFrame {
        self.derive(LogicalOp::Filter(predicate))
    }

    /// `df[col] = expr` — add or replace a computed column.
    pub fn with_column(&self, name: impl Into<String>, expr: Expr) -> LazyFrame {
        self.derive(LogicalOp::WithColumn(name.into(), expr))
    }

    /// `df[[cols]]` — projection.
    pub fn select(&self, cols: Vec<String>) -> LazyFrame {
        self.derive(LogicalOp::Select(cols))
    }

    /// `df.drop(columns=[...])`.
    pub fn drop(&self, cols: Vec<String>) -> LazyFrame {
        self.derive(LogicalOp::DropColumns(cols))
    }

    /// `df.rename(columns={old: new})`.
    pub fn rename(&self, mapping: Vec<(String, String)>) -> LazyFrame {
        self.derive(LogicalOp::Rename(mapping))
    }

    /// Frame-wide `df.fillna(value)`.
    pub fn fillna(&self, value: Scalar) -> LazyFrame {
        self.derive(LogicalOp::FillNa(value))
    }

    /// `df.drop_duplicates(subset=...)` (empty = all columns).
    pub fn drop_duplicates(&self, subset: Vec<String>) -> LazyFrame {
        self.derive(LogicalOp::DropDuplicates(subset))
    }

    /// `df.groupby(keys)[value].<agg>()`.
    pub fn groupby_agg(
        &self,
        keys: Vec<String>,
        value: impl Into<String>,
        agg: AggKind,
    ) -> LazyFrame {
        self.derive(LogicalOp::GroupByAgg(GroupBySpec {
            keys,
            value: value.into(),
            agg,
        }))
    }

    /// `left.merge(right, on=..., how=...)`.
    pub fn merge(&self, right: &LazyFrame, on: Vec<String>, how: JoinKind) -> LazyFrame {
        let node = self
            .ctx
            .add_node(LogicalOp::Merge { on, how }, vec![self.node, right.node]);
        LazyFrame {
            ctx: self.ctx.clone(),
            node,
        }
    }

    /// `df.sort_values(by, ascending)`.
    pub fn sort_values(&self, options: SortOptions) -> LazyFrame {
        self.derive(LogicalOp::Sort(options))
    }

    /// `df.head(n)`.
    pub fn head(&self, n: usize) -> LazyFrame {
        self.derive(LogicalOp::Head(n))
    }

    /// `df.tail(n)`.
    pub fn tail(&self, n: usize) -> LazyFrame {
        self.derive(LogicalOp::Tail(n))
    }

    /// `df.describe()`.
    pub fn describe(&self) -> LazyFrame {
        self.derive(LogicalOp::Describe)
    }

    /// `pd.concat([self, other])`.
    pub fn concat(&self, other: &LazyFrame) -> LazyFrame {
        let node = self
            .ctx
            .add_node(LogicalOp::Concat, vec![self.node, other.node]);
        LazyFrame {
            ctx: self.ctx.clone(),
            node,
        }
    }

    /// `df[col].<agg>()` — lazy scalar reduction.
    pub fn reduce(&self, column: impl Into<String>, agg: AggKind) -> LazyScalar {
        let node = self.ctx.add_node(
            LogicalOp::Reduce {
                column: column.into(),
                agg,
            },
            vec![self.node],
        );
        LazyScalar {
            ctx: self.ctx.clone(),
            node,
        }
    }

    /// Lazy `len(df)` (`lazyfatpandas.func.len`, §3.3).
    pub fn len(&self) -> LazyScalar {
        let node = self.ctx.add_node(LogicalOp::Len, vec![self.node]);
        LazyScalar {
            ctx: self.ctx.clone(),
            node,
        }
    }

    // -- expression sugar ---------------------------------------------------

    /// `df.col > lit` expression builder rooted at a column of this frame.
    pub fn col(&self, name: impl Into<String>) -> Expr {
        Expr::col(name)
    }

    // -- materialization boundaries ------------------------------------------

    /// Force computation (§3.4): flushes pending lazy prints first (output
    /// ordering!), then materializes this frame. `live` is the `live_df`
    /// list from static analysis (§3.5): dataframes still needed later,
    /// whose shared subexpressions should be persisted.
    pub fn compute(&self, live: &[&LazyFrame]) -> Result<DataFrame> {
        let live_nodes: Vec<NodeId> = live.iter().map(|f| f.node).collect();
        exec::compute_frame(&self.ctx, self.node, &live_nodes)
    }

    /// Lazy print of this frame (§3.3).
    pub fn print(&self) {
        print_args(&self.ctx, vec![PrintArg::Frame(self.clone())]);
    }
}

impl LazyScalar {
    /// The task-graph node this scalar denotes.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Force computation of the scalar (flushes pending prints first).
    pub fn compute(&self, live: &[&LazyFrame]) -> Result<Scalar> {
        let live_nodes: Vec<NodeId> = live.iter().map(|f| f.node).collect();
        exec::compute_scalar(&self.ctx, self.node, &live_nodes)
    }

    /// Lazy print of this scalar.
    pub fn print(&self) {
        print_args(&self.ctx, vec![PrintArg::Scalar(self.clone())]);
    }
}

/// Record a lazy print node from a mixed argument list (§3.3). Frames and
/// scalars become value inputs referenced by the template; an order edge to
/// the previous print keeps output in program order.
pub(crate) fn print_args(ctx: &LaFP, args: Vec<PrintArg>) {
    let mut pieces = Vec::with_capacity(args.len());
    let mut inputs = Vec::new();
    for arg in args {
        match arg {
            PrintArg::Text(t) => pieces.push(PrintPiece::Text(t)),
            PrintArg::Frame(f) => {
                pieces.push(PrintPiece::Value(inputs.len()));
                inputs.push(f.node);
            }
            PrintArg::Scalar(s) => {
                pieces.push(PrintPiece::Value(inputs.len()));
                inputs.push(s.node);
            }
        }
    }
    let mut inner = ctx.inner.lock();
    let node = inner.graph.add(LogicalOp::Print(pieces), inputs);
    if let Some(prev) = inner.last_print {
        inner.graph.add_order_dep(node, prev);
    }
    inner.last_print = Some(node);
    inner.pending_prints.push(node);
}

// Free-standing sugar for building expressions without a frame handle.

/// Column reference (`df.name` in predicates).
pub fn col(name: impl Into<String>) -> Expr {
    Expr::col(name)
}

/// Integer literal.
pub fn lit(v: i64) -> Expr {
    Expr::lit_int(v)
}

/// Float literal.
pub fn litf(v: f64) -> Expr {
    Expr::lit_float(v)
}

/// String literal.
pub fn lits(v: impl Into<String>) -> Expr {
    Expr::lit_str(v)
}

/// Comparison helper mirroring `a > b` etc. in PandaScript.
pub fn cmp(a: Expr, op: CmpOp, b: Expr) -> Expr {
    a.cmp(op, b)
}

/// Arithmetic helper mirroring `a + b` etc. in PandaScript.
pub fn arith(a: Expr, op: ArithOp, b: Expr) -> Expr {
    a.arith(op, b)
}

/// Re-exported join kind for call sites.
pub use lafp_columnar::join::JoinKind as Join;

impl std::fmt::Debug for LazyFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LazyFrame({})", self.node)
    }
}

impl std::fmt::Debug for LazyScalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LazyScalar({})", self.node)
    }
}
