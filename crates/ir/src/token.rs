//! Tokens of PandaScript.

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-reserved name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Plain string literal (quotes removed, escapes resolved).
    Str(String),
    /// f-string literal: raw inner text, to be split by the parser.
    FStr(String),
    // -- keywords ----------------------------------------------------
    /// `import`
    Import,
    /// `from`
    From,
    /// `as`
    As,
    /// `if`
    If,
    /// `elif`
    Elif,
    /// `else`
    Else,
    /// `for`
    For,
    /// `in`
    In,
    /// `not`
    Not,
    /// `True`
    True,
    /// `False`
    False,
    /// `None`
    NoneKw,
    /// `def`
    Def,
    /// `return`
    Return,
    // -- punctuation / operators -------------------------------------
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `~`
    Tilde,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    // -- structure ----------------------------------------------------
    /// End of a logical line.
    Newline,
    /// Indentation increase opening a block.
    Indent,
    /// Indentation decrease closing a block.
    Dedent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::FStr(_) => "f-string".into(),
            TokenKind::Newline => "newline".into(),
            TokenKind::Indent => "indent".into(),
            TokenKind::Dedent => "dedent".into(),
            TokenKind::Eof => "end of file".into(),
            other => format!("{other:?}").to_lowercase(),
        }
    }
}
