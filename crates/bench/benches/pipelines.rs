//! End-to-end pipeline benchmarks: the Figure-3 taxi workload per
//! configuration, and the lazy-print batching effect on the Dask backend.

use criterion::{criterion_group, criterion_main, Criterion};
use lafp_bench::datagen::{ensure_datasets, Size};
use lafp_bench::programs::program;
use lafp_bench::runner::{run_cell, Config, RunKnobs};
use std::hint::black_box;

fn bench_configurations(c: &mut Criterion) {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small).unwrap();
    let p = program("nyt").unwrap();
    let knobs = RunKnobs {
        budget: Some(usize::MAX),
        use_metadata: false,
        ..Default::default()
    };
    let mut g = c.benchmark_group("nyt_pipeline");
    g.sample_size(10);
    for config in Config::ALL {
        g.bench_function(config.label(), |b| {
            b.iter(|| {
                let r = run_cell(&p, config, &dir, &knobs);
                assert!(r.ok, "{:?}", r.error);
                black_box(r.output_hash)
            })
        });
    }
    g.finish();
}

fn bench_lazy_print(c: &mut Criterion) {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small).unwrap();
    let p = program("env").unwrap();
    let mut g = c.benchmark_group("lazy_print_env");
    g.sample_size(10);
    let with = RunKnobs {
        budget: Some(usize::MAX),
        use_metadata: false,
        ..Default::default()
    };
    g.bench_function("LDask_lazy_print", |b| {
        b.iter(|| black_box(run_cell(&p, Config::LDask, &dir, &with).ok))
    });
    let without = RunKnobs {
        disable_lazy_print: true,
        budget: Some(usize::MAX),
        use_metadata: false,
        ..Default::default()
    };
    g.bench_function("LDask_eager_print", |b| {
        b.iter(|| black_box(run_cell(&p, Config::LDask, &dir, &without).ok))
    });
    g.bench_function("Dask_baseline", |b| {
        b.iter(|| black_box(run_cell(&p, Config::Dask, &dir, &with).ok))
    });
    g.finish();
}

criterion_group!(benches, bench_configurations, bench_lazy_print);
criterion_main!(benches);
