//! Chaos differential suite: the backends workload re-run under seeded
//! fault injection.
//!
//! The contract under test is the PR's acceptance bar: with faults
//! armed, every query yields **either a result bit-identical to the
//! fault-free run or a structured [`ColumnarError`]** — never an abort,
//! never a wrong answer — and after each query (success or failure) the
//! memory tracker is back at zero and no spill temp file survives the
//! engine. Plans install into the process-global registry, so this
//! binary serializes on [`LOCK`].

use lafp_backends::dask::{DaskEngine, DaskNodeId, DaskOp, DaskValue};
use lafp_backends::MemoryTracker;
use lafp_columnar::column::ArithOp;
use lafp_columnar::csv::CsvOptions;
use lafp_columnar::encoding;
use lafp_columnar::faults::{self, FaultPlan, FaultSite};
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, ColumnarError, HeapSize};
use lafp_expr::Expr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_csv(tag: &str, rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("lafp-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.csv",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let mut text = String::from("fare,day,extra\n");
    for i in 0..rows {
        text.push_str(&format!("{}.5,{},blob-{i}\n", i as f64 - 40.0, i % 7));
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn scan(e: &mut DaskEngine, path: &Path) -> DaskNodeId {
    e.add(
        DaskOp::ReadCsv {
            path: path.to_path_buf(),
            options: CsvOptions::new(),
            limit: None,
        },
        vec![],
    )
}

/// Order-sensitive fingerprint of a computed value.
fn fingerprint(v: &DaskValue) -> String {
    match v {
        DaskValue::Scalar(s) => format!("scalar:{s}"),
        DaskValue::Frame(f) => {
            let names = f.column_names().join(",");
            format!("frame:[{names}]:{:?}", f.row_hashes(&[]).unwrap())
        }
    }
}

/// The engine's spill dirs live under the system temp dir, named
/// `lafp-spill-<pid>-<n>`. Any such dir still on disk means a leak.
fn leaked_spill_dirs() -> Vec<PathBuf> {
    let prefix = format!("lafp-spill-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .collect()
}

/// The workload: one builder per query, exercising the chain-fused scan
/// path, the blocking spill-prone sort, a hash join, and a scalar
/// reduction.
type Build = fn(&mut DaskEngine, &Path, &Path) -> DaskNodeId;

fn q_filter_groupby(e: &mut DaskEngine, a: &Path, _b: &Path) -> DaskNodeId {
    let s = scan(e, a);
    let f = e.add(
        DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
        vec![s],
    );
    let w = e.add(
        DaskOp::WithColumn(
            "fare2".into(),
            Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(2.0)),
        ),
        vec![f],
    );
    e.add(
        DaskOp::GroupByAgg(GroupBySpec {
            keys: vec!["day".into()],
            value: "fare2".into(),
            agg: AggKind::Sum,
        }),
        vec![w],
    )
}

fn q_sort_head(e: &mut DaskEngine, a: &Path, _b: &Path) -> DaskNodeId {
    let s = scan(e, a);
    let so = e.add(DaskOp::Sort(SortOptions::single("fare", false)), vec![s]);
    e.add(DaskOp::Head(64), vec![so])
}

fn q_merge(e: &mut DaskEngine, a: &Path, b: &Path) -> DaskNodeId {
    let left = scan(e, a);
    let lsel = e.add(DaskOp::Select(vec!["fare".into(), "day".into()]), vec![left]);
    let right = scan(e, b);
    let rsel = e.add(DaskOp::Select(vec!["day".into(), "extra".into()]), vec![right]);
    let m = e.add(
        DaskOp::Merge {
            on: vec!["day".into()],
            how: lafp_columnar::JoinKind::Inner,
        },
        vec![lsel, rsel],
    );
    e.add(DaskOp::Len, vec![m])
}

fn q_reduce(e: &mut DaskEngine, a: &Path, _b: &Path) -> DaskNodeId {
    let s = scan(e, a);
    let f = e.add(
        DaskOp::Filter(Expr::col("day").ge(Expr::lit_int(2))),
        vec![s],
    );
    e.add(
        DaskOp::Reduce {
            column: "fare".into(),
            agg: AggKind::Sum,
        },
        vec![f],
    )
}

/// Each query runs under these budget classes (`usize::MAX` =
/// unlimited; `0` is replaced by the probed squeezed budget). Only the
/// blocking sort gets the squeezed class — it spills and recovers; the
/// join's materialized output legitimately cannot fit it.
const WORKLOAD: &[(&str, Build, &[usize])] = &[
    ("filter_groupby", q_filter_groupby, &[usize::MAX]),
    ("sort_head", q_sort_head, &[usize::MAX, 0]),
    ("merge", q_merge, &[usize::MAX]),
    ("reduce", q_reduce, &[usize::MAX]),
];

fn run_query(budget: usize, build: Build, a: &Path, b: &Path) -> Result<String, ColumnarError> {
    let tracker = if budget == usize::MAX {
        MemoryTracker::unlimited()
    } else {
        MemoryTracker::with_budget(budget)
    };
    let mut e = DaskEngine::with_threads(Arc::clone(&tracker), 33, 4);
    let root = build(&mut e, a, b);
    let out = e.compute(root).map(|(v, r)| {
        let fp = fingerprint(&v);
        drop(v);
        drop(r);
        fp
    });
    drop(e);
    assert_eq!(
        tracker.current(),
        0,
        "tracker must return to zero after the query (ok={})",
        out.is_ok()
    );
    out
}

/// The tentpole's differential assertion: per seed, per query — same
/// answer as the fault-free run, or a structured error. Either way, no
/// leaked spill dirs and a zeroed tracker.
#[test]
fn chaos_differential_result_or_structured_error() {
    let _l = lock();
    let a = temp_csv("chaos-a", 900);
    let b = temp_csv("chaos-b", 400);
    // Squeezed budget so sort/merge genuinely spill: derive from the
    // materialized scan size, fault-free.
    let mut probe = DaskEngine::new(MemoryTracker::unlimited(), 64);
    let s = scan(&mut probe, &a);
    let (full, _r) = probe.gather(s).unwrap();
    let squeezed = full.heap_size() / 2;
    drop((full, _r, probe));
    let resolve = |b: usize| if b == 0 { squeezed } else { b };

    // Fault-free baselines (one per budget class).
    let mut baseline = std::collections::HashMap::new();
    for &(name, build, budgets) in WORKLOAD {
        for &budget in budgets {
            let fp = run_query(resolve(budget), build, &a, &b)
                .unwrap_or_else(|e| panic!("{name} fault-free failed: {e}"));
            baseline.insert((name, budget), fp);
        }
    }
    assert!(leaked_spill_dirs().is_empty(), "fault-free runs leaked");

    let mut injected_total = 0u64;
    let mut errored = 0usize;
    let mut matched = 0usize;
    for seed in [42u64, 1337, 7] {
        faults::stats().reset();
        let _g = faults::install(
            FaultPlan::new(seed)
                .with(FaultSite::SpillWrite, 0.05)
                .with(FaultSite::SpillRead, 0.05)
                .with(FaultSite::CsvRead, 0.01)
                .with(FaultSite::MorselExecute, 0.005)
                .with(FaultSite::Alloc, 0.01),
        );
        for &(name, build, budgets) in WORKLOAD {
            for &budget in budgets {
                match run_query(resolve(budget), build, &a, &b) {
                    Ok(fp) => {
                        assert_eq!(
                            &fp, &baseline[&(name, budget)],
                            "seed {seed}, query {name}: survived faults but answered wrong"
                        );
                        matched += 1;
                    }
                    // ANY ColumnarError is an acceptable outcome — the
                    // run_query asserts already checked the cleanup
                    // invariants. Reaching here at all means no abort.
                    Err(_) => errored += 1,
                }
                assert!(
                    leaked_spill_dirs().is_empty(),
                    "seed {seed}, query {name}: leaked spill dirs"
                );
            }
        }
        injected_total += faults::stats().snapshot().total_injected();
    }
    assert!(
        injected_total > 0,
        "the chaos plan never fired — the sweep tested nothing"
    );
    assert!(
        matched > 0,
        "every query failed under every seed (matched=0, errored={errored}); \
         recovery paths are not recovering"
    );
}

/// Acceptance criterion: one poisoned morsel fails only its query; the
/// same engine then runs the next query successfully.
#[test]
fn injected_panic_fails_one_query_engine_survives() {
    let _l = lock();
    let a = temp_csv("panic", 300);
    let tracker = MemoryTracker::unlimited();
    let mut e = DaskEngine::with_threads(Arc::clone(&tracker), 33, 4);
    {
        let _g = faults::install(FaultPlan::new(8).with(FaultSite::MorselExecute, 1.0));
        let root = q_filter_groupby(&mut e, &a, &a);
        let err = e.compute(root).unwrap_err();
        assert!(
            matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("injected")),
            "got {err:?}"
        );
    }
    assert_eq!(tracker.current(), 0, "failed query must release its memory");
    // Disarmed: the SAME engine computes the next query.
    let root = q_filter_groupby(&mut e, &a, &a);
    let (v, _r) = e.compute(root).unwrap();
    assert!(matches!(v, DaskValue::Frame(_)));
    assert!(faults::stats().snapshot().panics_isolated > 0);
}

#[test]
fn cancel_token_aborts_query_cleanly() {
    let _l = lock();
    let a = temp_csv("cancel", 500);
    let tracker = MemoryTracker::unlimited();
    let mut e = DaskEngine::with_threads(Arc::clone(&tracker), 33, 4);
    e.cancel_token().cancel();
    let root = q_sort_head(&mut e, &a, &a);
    let err = e.compute(root).unwrap_err();
    assert!(matches!(err, ColumnarError::Cancelled(_)), "got {err:?}");
    assert_eq!(tracker.current(), 0);
    // A fresh token makes the engine usable again.
    e.set_cancel_token(lafp_columnar::CancelToken::new());
    let root = q_sort_head(&mut e, &a, &a);
    let (v, _r) = e.compute(root).unwrap();
    assert!(matches!(v, DaskValue::Frame(_)));
}

#[test]
fn zero_query_timeout_trips_deterministically() {
    let _l = lock();
    let a = temp_csv("timeout", 500);
    std::env::set_var("LAFP_QUERY_TIMEOUT_MS", "0");
    let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), 33, 4);
    let root = q_reduce(&mut e, &a, &a);
    let result = e.compute(root);
    std::env::remove_var("LAFP_QUERY_TIMEOUT_MS");
    let err = result.unwrap_err();
    assert!(matches!(err, ColumnarError::Cancelled(_)), "got {err:?}");
    // A tripped deadline latches the shared flag (so siblings fail fast
    // too); recovery is an explicit fresh token, same as after cancel().
    e.set_cancel_token(lafp_columnar::CancelToken::new());
    let root = q_reduce(&mut e, &a, &a);
    assert!(e.compute(root).is_ok());
}

#[test]
fn meta_facade_reaches_the_same_registry() {
    let _l = lock();
    let _g = lafp_meta::faults::install(
        lafp_meta::faults::FaultPlan::new(11).with(lafp_meta::faults::FaultSite::Alloc, 1.0),
    );
    assert!(faults::fire(FaultSite::Alloc).is_some());
    let t = MemoryTracker::with_budget(1 << 20);
    let err = t.charge(16).unwrap_err();
    assert!(matches!(err, ColumnarError::OutOfMemory { .. }), "{err:?}");
}

/// A workload CSV with a low-cardinality `tag` column (five distinct
/// values), sized past [`encoding::DICT_MIN_ROWS`] so large scan chunks
/// dictionary-encode it at ingest.
fn temp_tag_csv(rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("lafp-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "tags-{}.csv",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let mut text = String::from("fare,day,tag\n");
    for i in 0..rows {
        text.push_str(&format!("{}.5,{},tag-{}\n", i as f64 - 40.0, i % 7, i % 5));
    }
    std::fs::write(&path, text).unwrap();
    path
}

/// Chaos over encoded execution: with scan chunks past the ingest
/// threshold the `tag` column arrives dictionary-encoded, the group-by
/// keys on it through the encoded fast path (decode-fallback counter
/// stays zero), and under seeded faults the query still yields the
/// baseline answer or a structured error. Finally, a *forced* spill
/// failure under a squeezed budget must drain the tracker to zero.
#[test]
fn dict_encoded_column_under_chaos() {
    let _l = lock();
    let path = temp_tag_csv(2 * encoding::DICT_MIN_ROWS + 300);
    let chunk = encoding::DICT_MIN_ROWS + 24; // chunks big enough to encode
    let build = |e: &mut DaskEngine| {
        let s = scan(e, &path);
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["tag".into()],
                value: "fare".into(),
                agg: AggKind::Sum,
            }),
            vec![s],
        )
    };

    // Fault-free baseline; counters are snapshotted before the
    // fingerprint so only ingest + group-by are measured.
    encoding::global().reset();
    let tracker = MemoryTracker::unlimited();
    let mut e = DaskEngine::with_threads(Arc::clone(&tracker), chunk, 4);
    let root = build(&mut e);
    let (v, _r) = e.compute(root).unwrap();
    let snap = encoding::global().snapshot();
    let baseline = fingerprint(&v);
    drop((v, _r, e));
    assert_eq!(tracker.current(), 0);
    assert!(
        snap.dict_columns > 0,
        "ingest must dictionary-encode the low-cardinality tag column"
    );
    assert_eq!(
        snap.decode_fallbacks, 0,
        "group-by on the dict key must stay on the encoded fast path"
    );

    // The same query under seeded fault injection: baseline answer or
    // structured error, tracker zeroed either way (run per query below).
    for seed in [42u64, 1337, 7] {
        let _g = faults::install(
            FaultPlan::new(seed)
                .with(FaultSite::SpillWrite, 0.05)
                .with(FaultSite::SpillRead, 0.05)
                .with(FaultSite::CsvRead, 0.01)
                .with(FaultSite::MorselExecute, 0.005),
        );
        let tracker = MemoryTracker::unlimited();
        let mut e = DaskEngine::with_threads(Arc::clone(&tracker), chunk, 4);
        let root = build(&mut e);
        // A structured error is an accepted outcome; success must match.
        if let Ok((v, _r)) = e.compute(root) {
            assert_eq!(
                fingerprint(&v),
                baseline,
                "seed {seed}: survived faults but answered wrong"
            );
        }
        drop(e);
        assert_eq!(tracker.current(), 0, "seed {seed}: tracker must drain");
    }

    // Forced spill failure: a squeezed budget makes the blocking sort
    // spill, every spill write faults, and the query must fail with a
    // structured error while the tracker still drains to zero.
    let mut probe = DaskEngine::new(MemoryTracker::unlimited(), chunk);
    let s = scan(&mut probe, &path);
    let (full, _r) = probe.gather(s).unwrap();
    let squeezed = full.heap_size() / 2;
    drop((full, _r, probe));
    let tracker = MemoryTracker::with_budget(squeezed);
    let mut e = DaskEngine::with_threads(Arc::clone(&tracker), 64, 4);
    let s = scan(&mut e, &path);
    let so = e.add(DaskOp::Sort(SortOptions::single("fare", false)), vec![s]);
    let root = e.add(DaskOp::Head(64), vec![so]);
    faults::stats().reset();
    let err = {
        let _g = faults::install(FaultPlan::new(5).with(FaultSite::SpillWrite, 1.0));
        e.compute(root).unwrap_err()
    };
    drop(e);
    assert!(
        faults::stats().snapshot().total_injected() > 0,
        "the forced spill fault never fired"
    );
    assert_eq!(
        tracker.current(),
        0,
        "tracker must return to zero after an injected spill failure ({err})"
    );
    assert!(leaked_spill_dirs().is_empty(), "spill failure leaked dirs");
}
