//! Process-wide column-encoding telemetry.
//!
//! The counters themselves live in `lafp-columnar`
//! (`lafp_columnar::encoding`) because the encode decisions and the
//! decode fallbacks both happen inside the kernel crate, below this one
//! in the dependency graph. This module re-exports them alongside the
//! other MetaStore telemetry surfaces ([`crate::spill`],
//! [`crate::fusion`], [`crate::faults`]) so instrumentation consumers —
//! benchmarks, regression tests, a future query service — have one
//! crate to import.
//!
//! Three counters matter for encoded execution health:
//!
//! - `dict_columns` / `rle_columns`: how many columns the decision
//!   layer actually encoded (ingest auto-detection plus explicit
//!   `dict_encode` / `rle_encode` calls).
//! - `decode_fallbacks`: how many times a kernel could not operate on
//!   the encoded form and expanded a column back to its plain
//!   representation. A low-cardinality pipeline that stays on the
//!   fast-pathed operators should report **zero** — the e2e test in
//!   `tests/encoding_e2e.rs` pins that invariant.
//! - `bytes_saved`: heap bytes the encoded form avoided relative to
//!   the plain column at encode time.
//!
//! Counters are process-global atomics; `reset()` zeroes them between
//! measurement windows. `LAFP_NO_ENCODE=1` disables the decision layer
//! entirely (see `lafp_columnar::encoding::enabled`), in which case all
//! counters stay at zero.

pub use lafp_columnar::encoding::{
    enabled, global, reset, snapshot, EncodingSnapshot, EncodingStats,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reaches_global_counters() {
        reset();
        global().record_dict(128);
        global().record_decode_fallback();
        let snap = snapshot();
        assert_eq!(snap.dict_columns, 1);
        assert_eq!(snap.decode_fallbacks, 1);
        assert_eq!(snap.bytes_saved, 128);
        reset();
        assert_eq!(snapshot().dict_columns, 0);
    }
}
