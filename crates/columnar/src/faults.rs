//! Deterministic fault injection — the executor's chaos harness.
//!
//! A production engine must treat failure as data: a panicking morsel, a
//! full spill disk, or a corrupt spill file should fail *one query* with
//! a structured [`ColumnarError`], never the process. This module is how
//! that property gets tested: a seeded registry of **injection points**
//! fires synthetic faults at the executor's I/O and execution boundaries
//! so the recovery paths (pool panic isolation, spill retry/fallback,
//! pipeline hang-up cascades) run constantly under test instead of only
//! on the day the disk actually fills up.
//!
//! ## Configuration
//!
//! The registry is armed from the `LAFP_FAULTS` environment variable —
//! a comma-separated list of `site:probability` pairs plus an optional
//! `seed`:
//!
//! ```text
//! LAFP_FAULTS=spill_write:0.05,worker_panic:0.01,seed=42
//! ```
//!
//! or programmatically with [`FaultPlan`] + [`install`] (tests use this;
//! the returned [`FaultGuard`] restores the previous plan on drop).
//! Sites and their default fault shapes:
//!
//! | key              | fires at                         | shape                          |
//! |------------------|----------------------------------|--------------------------------|
//! | `spill_write`    | spill-file create/write/flush    | transient I/O error / ENOSPC   |
//! | `spill_read`     | spill-file open/frame read       | transient I/O error / short read |
//! | `csv_read`       | CSV open / chunk parse           | transient I/O error            |
//! | `worker_panic`   | morsel execution (pool + driver) | worker panic                   |
//! | `pipeline_stage` | pipeline stage startup           | stage panic                    |
//! | `alloc`          | memory-tracker charges           | allocation-budget denial       |
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, site, draw-index)` — a
//! per-site atomic counter indexes draws, and a splitmix64 hash of the
//! triple is compared against the site's probability threshold. Two runs
//! with the same seed and the same per-site draw counts fire the same
//! *number* of faults at each site regardless of thread interleaving,
//! and a single-threaded replay fires exactly the same draws.
//!
//! Retries redraw: a retried spill write consults the registry again
//! with the next draw index, so injected faults are *transient* by
//! construction and the retry/fallback machinery genuinely recovers.
//! Recovery is counted ([`FaultSnapshot::retries_recovered`],
//! [`FaultSnapshot::dir_fallbacks`]) so tests can assert the recovery
//! path actually ran rather than the fault never firing.
//!
//! ## Overhead
//!
//! When no plan is installed (the production configuration) every hook
//! is a single relaxed atomic load returning `None` — the bench suite
//! pins that the hooks add no measurable cost to the kernel ratios.

use crate::error::{ColumnarError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of injection sites (array-indexed by [`FaultSite`]).
pub const N_SITES: usize = 6;

/// Where a synthetic fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Spill-file create / frame write / flush.
    SpillWrite,
    /// Spill-file open / frame read.
    SpillRead,
    /// CSV open / chunk read.
    CsvRead,
    /// Morsel execution — pool worker claims and the driver's per-morsel
    /// operator work (env key `worker_panic`).
    MorselExecute,
    /// Pipeline stage startup (producer / middle stage threads).
    PipelineStage,
    /// Memory-tracker charge (allocation-budget denial).
    Alloc,
}

impl FaultSite {
    /// All sites, index-aligned with the per-site arrays.
    pub const ALL: [FaultSite; N_SITES] = [
        FaultSite::SpillWrite,
        FaultSite::SpillRead,
        FaultSite::CsvRead,
        FaultSite::MorselExecute,
        FaultSite::PipelineStage,
        FaultSite::Alloc,
    ];

    /// The site's `LAFP_FAULTS` key.
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::SpillWrite => "spill_write",
            FaultSite::SpillRead => "spill_read",
            FaultSite::CsvRead => "csv_read",
            FaultSite::MorselExecute => "worker_panic",
            FaultSite::PipelineStage => "pipeline_stage",
            FaultSite::Alloc => "alloc",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SpillWrite => 0,
            FaultSite::SpillRead => 1,
            FaultSite::CsvRead => 2,
            FaultSite::MorselExecute => 3,
            FaultSite::PipelineStage => 4,
            FaultSite::Alloc => 5,
        }
    }
}

/// The shape of an injected fault, decided by the firing site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O failure (retryable).
    Io(String),
    /// Device-full (`ENOSPC`-shaped; retry on the same dir is futile but
    /// a fallback dir may succeed).
    Enospc,
    /// Short read / corrupt payload.
    Corrupt,
    /// Allocation-budget denial.
    Oom,
    /// A worker / stage panic.
    Panic(String),
}

/// A seeded set of per-site fire probabilities.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Fire threshold per site in 1/2³² units (`0` = never).
    thresholds: [u64; N_SITES],
}

impl FaultPlan {
    /// An empty plan (nothing fires) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            thresholds: [0; N_SITES],
        }
    }

    /// Set a site's fire probability (clamped to `0..=1`).
    pub fn with(mut self, site: FaultSite, probability: f64) -> FaultPlan {
        let p = probability.clamp(0.0, 1.0);
        self.thresholds[site.index()] = (p * (1u64 << 32) as f64) as u64;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parse the `LAFP_FAULTS` syntax
    /// (`site:prob,site:prob,...,seed=N`). Unknown keys are rejected so
    /// typos fail loudly instead of silently injecting nothing.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut plan = FaultPlan::new(0);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                plan.seed = seed.trim().parse::<u64>().map_err(|_| {
                    ColumnarError::InvalidArgument(format!("LAFP_FAULTS: bad seed {seed:?}"))
                })?;
                continue;
            }
            let (key, prob) = part.split_once(':').ok_or_else(|| {
                ColumnarError::InvalidArgument(format!(
                    "LAFP_FAULTS: expected site:probability, got {part:?}"
                ))
            })?;
            let site = FaultSite::ALL
                .iter()
                .find(|s| s.key() == key.trim())
                .copied()
                .ok_or_else(|| {
                    ColumnarError::InvalidArgument(format!(
                        "LAFP_FAULTS: unknown site {key:?}"
                    ))
                })?;
            let p = prob.trim().parse::<f64>().map_err(|_| {
                ColumnarError::InvalidArgument(format!(
                    "LAFP_FAULTS: bad probability {prob:?} for {key}"
                ))
            })?;
            plan = plan.with(site, p);
        }
        Ok(plan)
    }

    /// Does any site ever fire?
    pub fn is_armed(&self) -> bool {
        self.thresholds.iter().any(|&t| t > 0)
    }
}

/// Cumulative injection / recovery counters (see [`stats`]).
#[derive(Debug, Default)]
pub struct FaultStats {
    injected: [AtomicU64; N_SITES],
    draws: [AtomicU64; N_SITES],
    retries_recovered: AtomicU64,
    dir_fallbacks: AtomicU64,
    panics_isolated: AtomicU64,
}

/// A point-in-time copy of the fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Faults fired per site (index-aligned with [`FaultSite::ALL`]).
    pub injected: [u64; N_SITES],
    /// Registry consultations per site.
    pub draws: [u64; N_SITES],
    /// Operations that failed at least once and then succeeded on retry
    /// (same spill dir).
    pub retries_recovered: u64,
    /// Spill writes that recovered by switching to a fallback dir.
    pub dir_fallbacks: u64,
    /// Worker / stage panics converted into structured errors.
    pub panics_isolated: u64,
}

impl FaultSnapshot {
    /// Total faults fired across every site.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Faults fired at one site.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }
}

impl FaultStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        let mut injected = [0u64; N_SITES];
        let mut draws = [0u64; N_SITES];
        for i in 0..N_SITES {
            injected[i] = self.injected[i].load(Ordering::Relaxed);
            draws[i] = self.draws[i].load(Ordering::Relaxed);
        }
        FaultSnapshot {
            injected,
            draws,
            retries_recovered: self.retries_recovered.load(Ordering::Relaxed),
            dir_fallbacks: self.dir_fallbacks.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between measured runs).
    pub fn reset(&self) {
        for i in 0..N_SITES {
            self.injected[i].store(0, Ordering::Relaxed);
            self.draws[i].store(0, Ordering::Relaxed);
        }
        self.retries_recovered.store(0, Ordering::Relaxed);
        self.dir_fallbacks.store(0, Ordering::Relaxed);
        self.panics_isolated.store(0, Ordering::Relaxed);
    }
}

/// The process-wide fault counters.
pub fn stats() -> &'static FaultStats {
    static STATS: OnceLock<FaultStats> = OnceLock::new();
    STATS.get_or_init(FaultStats::default)
}

/// Record an operation that failed under injection and then succeeded on
/// a same-dir retry (called by the spill recovery path).
pub fn record_retry_recovered() {
    stats().retries_recovered.fetch_add(1, Ordering::Relaxed);
}

/// Record a spill write that recovered by switching to a fallback dir.
pub fn record_dir_fallback() {
    stats().dir_fallbacks.fetch_add(1, Ordering::Relaxed);
}

/// Record a worker / stage panic converted into a structured
/// [`ColumnarError::WorkerPanic`] (called by the pool and pipelines —
/// counts *real* panics too, which is exactly what a long-lived server
/// wants on its dashboard).
pub fn record_panic_isolated() {
    stats().panics_isolated.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry state
// ---------------------------------------------------------------------------

/// Fast disarm flag: `fire` is one relaxed load when no plan is active.
static ARMED: AtomicBool = AtomicBool::new(false);

struct Registry {
    /// Installed plans, innermost last. The env plan (if any) sits at the
    /// bottom of the stack.
    stack: Mutex<Vec<Arc<FaultPlan>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| {
        let mut stack = Vec::new();
        if let Ok(spec) = std::env::var("LAFP_FAULTS") {
            if !spec.trim().is_empty() {
                match FaultPlan::parse(&spec) {
                    Ok(plan) => {
                        if plan.is_armed() {
                            ARMED.store(true, Ordering::Relaxed);
                        }
                        stack.push(Arc::new(plan));
                    }
                    Err(e) => eprintln!("ignoring invalid LAFP_FAULTS: {e}"),
                }
            }
        }
        Registry {
            stack: Mutex::new(stack),
        }
    })
}

/// Install a plan, overriding any active one until the guard drops.
/// Tests that install plans should serialize on their own mutex — the
/// registry is process-global.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let reg = registry();
    let mut stack = reg.stack.lock().unwrap_or_else(PoisonError::into_inner);
    stack.push(Arc::new(plan));
    ARMED.store(
        stack.iter().any(|p| p.is_armed()),
        Ordering::Relaxed,
    );
    FaultGuard { _private: () }
}

/// Uninstalls its plan (restoring the previous one) on drop.
#[derive(Debug)]
pub struct FaultGuard {
    _private: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let reg = registry();
        let mut stack = reg.stack.lock().unwrap_or_else(PoisonError::into_inner);
        stack.pop();
        ARMED.store(
            stack.iter().any(|p| p.is_armed()),
            Ordering::Relaxed,
        );
    }
}

/// splitmix64 — a tiny strong mixer, the standard seed expander.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Consult the registry at `site`. Returns the fault to simulate, or
/// `None` (the overwhelmingly common case; one relaxed load when
/// disarmed).
pub fn fire(site: FaultSite) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let reg = registry();
    let plan = {
        let stack = reg.stack.lock().unwrap_or_else(PoisonError::into_inner);
        stack.last().cloned()?
    };
    let i = site.index();
    let threshold = plan.thresholds[i];
    if threshold == 0 {
        return None;
    }
    let draw = stats().draws[i].fetch_add(1, Ordering::Relaxed);
    let h = splitmix64(plan.seed ^ splitmix64((i as u64) << 32 | draw));
    if (h >> 32) >= threshold {
        return None;
    }
    stats().injected[i].fetch_add(1, Ordering::Relaxed);
    Some(match site {
        FaultSite::SpillWrite => {
            if h & 1 == 0 {
                FaultKind::Io(format!("injected transient spill-write error (draw {draw})"))
            } else {
                FaultKind::Enospc
            }
        }
        FaultSite::SpillRead => {
            if h & 1 == 0 {
                FaultKind::Io(format!("injected transient spill-read error (draw {draw})"))
            } else {
                FaultKind::Corrupt
            }
        }
        FaultSite::CsvRead => {
            FaultKind::Io(format!("injected transient csv-read error (draw {draw})"))
        }
        FaultSite::MorselExecute => {
            FaultKind::Panic(format!("injected worker panic (draw {draw})"))
        }
        FaultSite::PipelineStage => {
            FaultKind::Panic(format!("injected pipeline-stage panic (draw {draw})"))
        }
        FaultSite::Alloc => FaultKind::Oom,
    })
}

/// Hook for I/O layers: `Err(io::Error)` when a fault fires at `site`.
pub fn inject_io(site: FaultSite) -> std::io::Result<()> {
    match fire(site) {
        None => Ok(()),
        Some(FaultKind::Enospc) => Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected ENOSPC (device full)",
        )),
        Some(FaultKind::Corrupt) => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "injected short read (corrupt payload)",
        )),
        Some(FaultKind::Io(msg)) => {
            Err(std::io::Error::other(msg))
        }
        Some(FaultKind::Oom) => Err(std::io::Error::other("injected allocation denial")),
        // Panic kinds never fire at I/O sites, but honor the contract.
        Some(FaultKind::Panic(msg)) => panic!("{msg}"),
    }
}

/// Hook for execution layers: panics on a `Panic` fault (the caller's
/// `catch_unwind` boundary is what is under test), errors otherwise.
pub fn inject(site: FaultSite) -> Result<()> {
    match fire(site) {
        None => Ok(()),
        Some(FaultKind::Panic(msg)) => panic!("{msg}"),
        Some(FaultKind::Oom) => Err(ColumnarError::OutOfMemory {
            requested: 0,
            available: 0,
        }),
        Some(FaultKind::Enospc) => Err(ColumnarError::Io {
            kind: std::io::ErrorKind::StorageFull,
            message: "injected ENOSPC (device full)".into(),
        }),
        Some(FaultKind::Corrupt) => Err(ColumnarError::Io {
            kind: std::io::ErrorKind::UnexpectedEof,
            message: "injected short read (corrupt payload)".into(),
        }),
        Some(FaultKind::Io(msg)) => Err(ColumnarError::Io {
            kind: std::io::ErrorKind::Other,
            message: msg,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes registry-mutating tests within this binary.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("spill_write:0.5, worker_panic:0.25 ,seed=42,csv_read:1.0").unwrap();
        assert_eq!(plan.seed(), 42);
        assert!(plan.is_armed());
        assert!(plan.thresholds[FaultSite::SpillWrite.index()] > 0);
        assert_eq!(
            plan.thresholds[FaultSite::CsvRead.index()],
            1u64 << 32,
            "p=1.0 always fires"
        );
        assert_eq!(plan.thresholds[FaultSite::Alloc.index()], 0);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultPlan::parse("bogus_site:0.5").is_err());
        assert!(FaultPlan::parse("spill_write=0.5").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("spill_write:x").is_err());
        assert!(!FaultPlan::parse("").unwrap().is_armed());
    }

    #[test]
    fn disarmed_fires_nothing() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        if std::env::var("LAFP_FAULTS").is_ok() {
            // CI chaos runs arm the registry from the environment; the
            // disarmed invariant is only checkable without it.
            return;
        }
        for site in FaultSite::ALL {
            assert_eq!(fire(site), None);
        }
    }

    #[test]
    fn p1_always_fires_and_counts() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let before = stats().snapshot().injected_at(FaultSite::CsvRead);
        let _g = install(FaultPlan::new(7).with(FaultSite::CsvRead, 1.0));
        for _ in 0..10 {
            assert!(fire(FaultSite::CsvRead).is_some());
        }
        assert_eq!(
            stats().snapshot().injected_at(FaultSite::CsvRead),
            before + 10
        );
        drop(_g);
        assert_eq!(fire(FaultSite::CsvRead), None, "guard restored disarm");
    }

    #[test]
    fn seeded_rate_is_roughly_probability() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let _g = install(FaultPlan::new(1234).with(FaultSite::SpillWrite, 0.2));
        let fired = (0..2000)
            .filter(|_| fire(FaultSite::SpillWrite).is_some())
            .count();
        assert!(
            (200..600).contains(&fired),
            "p=0.2 over 2000 draws fired {fired}"
        );
    }

    #[test]
    fn panic_site_panics_via_inject() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let _g = install(FaultPlan::new(1).with(FaultSite::MorselExecute, 1.0));
        let r = std::panic::catch_unwind(|| inject(FaultSite::MorselExecute));
        assert!(r.is_err(), "worker_panic site must panic");
    }

    #[test]
    fn io_site_yields_io_error() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let _g = install(FaultPlan::new(1).with(FaultSite::SpillWrite, 1.0));
        assert!(inject_io(FaultSite::SpillWrite).is_err());
        let err = inject(FaultSite::SpillWrite).unwrap_err();
        assert!(matches!(err, ColumnarError::Io { .. }));
    }

    #[test]
    fn nested_installs_restore_in_order() {
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let g1 = install(FaultPlan::new(1).with(FaultSite::Alloc, 1.0));
        {
            let _g2 = install(FaultPlan::new(2)); // unarmed inner plan
            assert_eq!(fire(FaultSite::Alloc), None);
        }
        assert!(fire(FaultSite::Alloc).is_some(), "outer plan active again");
        drop(g1);
        assert_eq!(fire(FaultSite::Alloc), None);
    }
}
