//! # lafp-bench — the paper's evaluation, reproduced
//!
//! Everything needed to regenerate §5 of the paper:
//!
//! * [`datagen`] — seeded generators for the ten benchmark datasets
//!   (taxi, vessels, cities, employees, sensors, startups, movies,
//!   students, zip/census, generic data-science) at the three paper sizes,
//!   scaled 1:1000 (1.4 GB → 1.4 MB) together with the memory budget
//!   (32 GB → 32 MB), which preserves the working-set-to-budget ratios
//!   that decide the Figure-12 success matrix.
//! * [`programs`] — the ten PandaScript benchmark programs
//!   (`ais cty dso emp env fdb mov nyt stu zip`), each exercising the
//!   operator mix its namesake exercises in the paper.
//! * [`runner`] — runs one (program, configuration, size) cell: the six
//!   configurations are Pandas/Modin/Dask baselines and LPandas/LModin/
//!   LDask (JIT-rewritten on the LaFP runtime).
//! * [`experiments`] — the figure generators: Fig. 12 (success counts),
//!   Fig. 13 (absolute times), Fig. 14 (time improvements), Fig. 15
//!   (memory improvements), the `stu` caching ablation, the JIT overhead
//!   table, and the §5.2 regression check.
//! * [`kernel_bench`] — kernel microbenchmarks racing the vectorized
//!   columnar kernels against seed-era scalar-boxed reference
//!   implementations; `harness -- bench --json` writes the per-PR
//!   `BENCH_PR<N>.json` trajectory artifact.

#![warn(missing_docs)]

pub mod datagen;
pub mod experiments;
pub mod kernel_bench;
pub mod programs;
pub mod runner;

pub use datagen::{ensure_datasets, Size};
pub use kernel_bench::{run_suite, BenchResult};
pub use programs::{program, Program, PROGRAM_NAMES};
pub use runner::{run_cell, Config, RunResult};
