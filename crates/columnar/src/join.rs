//! Hash joins (pandas `merge`).
//!
//! The join is keyed by a `u64` row hash (the same FNV-1a mix
//! [`Column::hash_into`] uses everywhere) over typed key views: the right
//! (build) side's rows are bucketed by hash with column-wise typed
//! equality on collision, and the left side probes with the same hashes.
//! No key is ever rendered to a `String` on the typed path — the seed
//! implementation built one canonical key `String` per row on *both*
//! sides, which dominated the join's cost.
//!
//! Equality follows the seed's canonical-rendering semantics exactly:
//! nulls match nulls, floats compare by bits (`0.0` and `-0.0` rendered
//! differently and therefore never joined), and a null string key renders
//! as `"NaN"` — equal to a literal `"NaN"` string value, as the old
//! stringly keying had it. Key column pairs whose dtypes disagree across
//! the two sides (degenerate inputs) fall back to the canonical-string
//! path, which reproduces the old behaviour verbatim.

use crate::bitmap::{BitWriter, Bitmap};
use crate::column::{fnv1a, Categorical, Column, ColumnBuilder, HashTable, IndexLike, HASH_PRIME};
use crate::error::{ColumnarError, Result};
use crate::frame::DataFrame;
use crate::pool::{kernel_morsels, WorkerPool, PAR_MIN_ROWS};
use crate::series::Series;
use crate::strings::{Utf8Builder, Utf8Col};
use std::collections::HashMap;

/// Join kinds supported by `merge(..., how=...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Keep only matching rows.
    Inner,
    /// Keep every left row; right columns are null when unmatched.
    Left,
}

impl JoinKind {
    /// Parse the pandas `how=` value.
    pub fn parse(name: &str) -> Option<JoinKind> {
        match name {
            "inner" => Some(JoinKind::Inner),
            "left" => Some(JoinKind::Left),
            _ => None,
        }
    }

    /// The `how=` spelling.
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::Left => "left",
        }
    }
}

/// Hash-join `left` and `right` on equality of the named key columns
/// (`on` must exist on both sides, like pandas `merge(on=...)`).
///
/// Non-key columns that exist on both sides get pandas-style `_x` / `_y`
/// suffixes. The right side is the build side; output preserves left row
/// order (then right match order), matching pandas.
pub fn merge(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
) -> Result<DataFrame> {
    merge_par(left, right, on, how, &WorkerPool::sequential())
}

/// [`merge`] driven through a worker pool: the build side is hashed and
/// hash-partitioned across workers, the left side is probed in
/// row-range morsels whose output runs are stitched back in morsel
/// order, and the output columns are gathered in parallel. The result
/// is bit-identical to the sequential join at any thread count (probe
/// order is preserved per morsel; per-key build row lists stay in scan
/// order because one key's rows all hash into one partition).
pub fn merge_par(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
    pool: &WorkerPool,
) -> Result<DataFrame> {
    if on.is_empty() {
        return Err(ColumnarError::InvalidArgument(
            "merge requires at least one key".into(),
        ));
    }
    // Row ids are carried as u32 whenever both sides fit (always, in
    // practice) — half the index memory traffic through output assembly.
    if left.num_rows() < u32::MAX as usize && right.num_rows() < u32::MAX as usize {
        merge_impl::<u32>(left, right, on, how, pool)
    } else {
        merge_impl::<usize>(left, right, on, how, pool)
    }
}

fn merge_impl<I: IndexLike + Send + Sync>(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
    pool: &WorkerPool,
) -> Result<DataFrame> {
    // Run-length keys fall back to plain rows; dictionary keys flow
    // through the Cat views natively (and, single-key, probe on codes).
    let left_keys: Vec<std::borrow::Cow<'_, Column>> = on
        .iter()
        .map(|k| left.column(k).map(|s| s.column().rle_decoded()))
        .collect::<Result<Vec<_>>>()?;
    let right_keys: Vec<std::borrow::Cow<'_, Column>> = on
        .iter()
        .map(|k| right.column(k).map(|s| s.column().rle_decoded()))
        .collect::<Result<Vec<_>>>()?;

    let left_views: Vec<KeyView<'_>> = left_keys.iter().map(|c| KeyView::new(c.as_ref())).collect();
    let right_views: Vec<KeyView<'_>> =
        right_keys.iter().map(|c| KeyView::new(c.as_ref())).collect();
    // The typed build table stores row ids as u32, so it additionally
    // requires both sides to fit u32 (they always do when merge picked
    // I = u32; the I = usize instantiation exists for the >4-billion-row
    // case, which routes through the canonical path below instead).
    let fits_u32 =
        left.num_rows() < u32::MAX as usize && right.num_rows() < u32::MAX as usize;
    let (left_idx, right_idx, any_miss): (Vec<I>, Vec<I>, bool) =
        if fits_u32 && same_classes(&left_views, &right_views) {
            join_indices_typed(
                &left_views,
                left.num_rows(),
                &right_views,
                right.num_rows(),
                how,
                pool,
            )
        } else {
            // Degenerate cross-dtype keys (or an absurdly large build
            // side): the seed canonical-string join.
            join_indices_canonical(left, right, on, how)?
        };

    // Assemble output columns (the dominant join cost — see ROADMAP):
    // plan every gather, then run the per-column gathers on the pool.
    let key_set: std::collections::HashSet<&str> = on.iter().map(String::as_str).collect();
    let overlap: std::collections::HashSet<&str> = left
        .column_names()
        .into_iter()
        .filter(|n| !key_set.contains(n) && right.has_column(n))
        .collect();

    // FK-join shape: every left row matched exactly once, in order. The
    // left gather is the identity permutation — clone the buffers
    // (memcpy) instead of gathering element by element.
    let identity = left_idx.len() == left.num_rows()
        && left_idx.iter().enumerate().all(|(k, &i)| i.idx() == k);

    // (name, source column, is_right_side) for every output column.
    let mut plan: Vec<(String, &Column, bool)> = Vec::new();
    for s in left.series() {
        let name = if overlap.contains(s.name()) {
            format!("{}_x", s.name())
        } else {
            s.name().to_string()
        };
        plan.push((name, s.column(), false));
    }
    for s in right.series() {
        if key_set.contains(s.name()) {
            continue; // key columns come from the left side
        }
        let name = if overlap.contains(s.name()) {
            format!("{}_y", s.name())
        } else {
            s.name().to_string()
        };
        plan.push((name, s.column(), true));
    }
    // The computed row ids are in bounds by construction, so assembly
    // skips `take`'s per-column bounds scan. Small outputs gather
    // sequentially — scoped workers don't amortize below PAR_MIN_ROWS.
    let seq = WorkerPool::sequential();
    let gather_pool = if left_idx.len() >= PAR_MIN_ROWS { pool } else { &seq };
    let out: Vec<Series> = gather_pool.map(plan, |_, (name, col, is_right)| {
        let gathered = if is_right {
            if any_miss {
                gather_optional(col, &right_idx)
            } else {
                col.take_unchecked(&right_idx)
            }
        } else if identity {
            col.clone()
        } else {
            col.take_unchecked(&left_idx)
        };
        Series::new(name, gathered)
    });
    DataFrame::new(out)
}

// ---------------------------------------------------------------------------
// Typed key views
// ---------------------------------------------------------------------------

/// A borrowed typed view of one key column, matched once per join so the
/// per-row hash and equality paths are branch-cheap and allocation-free.
enum KeyView<'a> {
    Int(&'a [i64], Option<&'a Bitmap>),
    Dt(&'a [i64], Option<&'a Bitmap>),
    Float(&'a [f64], Option<&'a Bitmap>),
    Bool(&'a Bitmap, Option<&'a Bitmap>),
    Utf8(&'a Utf8Col, Option<&'a Bitmap>),
    Cat(&'a Categorical, Option<&'a Bitmap>),
}

/// Key equality classes: pairs within one class compare typed; anything
/// else falls back to canonical strings.
#[derive(PartialEq, Eq, Clone, Copy)]
enum KeyClass {
    Int,
    Dt,
    Float,
    Bool,
    Str,
}

impl<'a> KeyView<'a> {
    fn new(col: &'a Column) -> KeyView<'a> {
        match col {
            Column::Int64(d, v) => KeyView::Int(d, v.as_ref()),
            Column::Datetime(d, v) => KeyView::Dt(d, v.as_ref()),
            Column::Float64(d, v) => KeyView::Float(d, v.as_ref()),
            Column::Bool(d, v) => KeyView::Bool(d, v.as_ref()),
            Column::Utf8(d, v) => KeyView::Utf8(d, v.as_ref()),
            Column::Categorical(c, v) | Column::Dict(c, v) => KeyView::Cat(c, v.as_ref()),
            // `merge_impl` expands run-length keys before building views;
            // a borrowed view cannot own the expansion.
            Column::Rle(_) => unreachable!("RLE keys are decoded before view construction"),
        }
    }

    fn class(&self) -> KeyClass {
        match self {
            KeyView::Int(..) => KeyClass::Int,
            KeyView::Dt(..) => KeyClass::Dt,
            KeyView::Float(..) => KeyClass::Float,
            KeyView::Bool(..) => KeyClass::Bool,
            KeyView::Utf8(..) | KeyView::Cat(..) => KeyClass::Str,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        let masked = |m: &Option<&Bitmap>| m.is_some_and(|m| !m.get(i));
        match self {
            KeyView::Float(d, m) => d[i].is_nan() || masked(m),
            KeyView::Int(_, m)
            | KeyView::Dt(_, m)
            | KeyView::Bool(_, m)
            | KeyView::Utf8(_, m)
            | KeyView::Cat(_, m) => masked(m),
        }
    }

    /// String-class cell rendering: nulls render `"NaN"` (the canonical
    /// semantics the seed's key strings had).
    #[inline]
    fn str_at(&self, i: usize) -> &str {
        if self.is_null(i) {
            return "NaN";
        }
        match self {
            KeyView::Utf8(d, _) => d.get(i),
            KeyView::Cat(c, _) => c.dict.get(c.codes[i] as usize),
            _ => unreachable!("str_at on non-string key view"),
        }
    }

    /// Mix the per-row hash contribution of rows
    /// `offset .. offset + hashes.len()` into `hashes` (slot `j`
    /// accumulates row `offset + j`), matching [`Column::hash_into`]'s
    /// scheme — except string-class nulls, which hash as the rendered
    /// `"NaN"` so they land in the same bucket as a literal `"NaN"` value
    /// (which canonical equality equates them with). The range form lets
    /// parallel workers fill disjoint sub-slices of one hash array.
    fn hash_range_into(&self, offset: usize, hashes: &mut [u64]) {
        let len = hashes.len();
        let mut mix = |j: usize, v: u64| {
            let h = &mut hashes[j];
            *h = (*h ^ v).wrapping_mul(HASH_PRIME);
        };
        match self {
            KeyView::Int(d, _) | KeyView::Dt(d, _) => {
                for (j, &x) in d[offset..offset + len].iter().enumerate() {
                    mix(j, if self.is_null(offset + j) { u64::MAX } else { x as u64 });
                }
            }
            KeyView::Float(d, _) => {
                for (j, &x) in d[offset..offset + len].iter().enumerate() {
                    mix(j, if self.is_null(offset + j) { u64::MAX } else { x.to_bits() });
                }
            }
            KeyView::Bool(d, _) => {
                for j in 0..len {
                    let i = offset + j;
                    mix(j, if self.is_null(i) { u64::MAX } else { d.get(i) as u64 });
                }
            }
            KeyView::Utf8(d, _) => {
                // Hash straight off the arena bytes.
                let nan = fnv1a(b"NaN");
                for j in 0..len {
                    let i = offset + j;
                    mix(j, if self.is_null(i) { nan } else { fnv1a(d.bytes_at(i)) });
                }
            }
            KeyView::Cat(c, _) => {
                // Hash each dictionary entry once, then look codes up.
                let nan = fnv1a(b"NaN");
                let dict_hashes: Vec<u64> =
                    (0..c.dict.len()).map(|d| fnv1a(c.dict.bytes_at(d))).collect();
                for (j, &code) in c.codes[offset..offset + len].iter().enumerate() {
                    let i = offset + j;
                    mix(j, if self.is_null(i) { nan } else { dict_hashes[code as usize] });
                }
            }
        }
    }
}

/// All key columns' row hashes, filled morsel-parallel when the side is
/// big enough to amortize the workers.
fn hash_rows(views: &[KeyView<'_>], rows: usize, pool: &WorkerPool) -> Vec<u64> {
    let mut hashes = vec![0u64; rows];
    if !pool.is_parallel() || rows < PAR_MIN_ROWS {
        for v in views {
            v.hash_range_into(0, &mut hashes);
        }
        return hashes;
    }
    let morsels = kernel_morsels(rows, pool.threads());
    let chunks = crate::pool::split_mut_chunks(&mut hashes, &morsels);
    pool.map(chunks, |_, (start, chunk)| {
        for v in views {
            v.hash_range_into(start, chunk);
        }
    });
    hashes
}

/// Canonical-rendering equality of row `i` of `a` and row `j` of `b`.
/// Caller guarantees `a.class() == b.class()`.
#[inline]
fn rows_equal(a: &KeyView<'_>, i: usize, b: &KeyView<'_>, j: usize) -> bool {
    match (a, b) {
        (KeyView::Int(ad, _), KeyView::Int(bd, _)) | (KeyView::Dt(ad, _), KeyView::Dt(bd, _)) => {
            match (a.is_null(i), b.is_null(j)) {
                (true, true) => true,
                (false, false) => ad[i] == bd[j],
                _ => false,
            }
        }
        (KeyView::Float(ad, _), KeyView::Float(bd, _)) => match (a.is_null(i), b.is_null(j)) {
            (true, true) => true,
            // Bit equality matches rendered equality (-0.0 and 0.0 render
            // differently, so the seed never joined them).
            (false, false) => ad[i].to_bits() == bd[j].to_bits(),
            _ => false,
        },
        (KeyView::Bool(ad, _), KeyView::Bool(bd, _)) => match (a.is_null(i), b.is_null(j)) {
            (true, true) => true,
            (false, false) => ad.get(i) == bd.get(j),
            _ => false,
        },
        // String class (Utf8 / Categorical in any mix): rendered equality,
        // nulls rendering "NaN".
        _ => a.str_at(i) == b.str_at(j),
    }
}

/// Do the two sides' key columns pair up class-wise?
fn same_classes(a: &[KeyView<'_>], b: &[KeyView<'_>]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.class() == y.class())
}

// ---------------------------------------------------------------------------
// The hash table
// ---------------------------------------------------------------------------

/// One hash partition's build output: distinct keys (representative row
/// + hash) with their right-row lists in scan order.
struct BuildPartition {
    group_repr: Vec<u32>,
    group_hash: Vec<u64>,
    group_rows: Vec<Vec<u32>>,
}

/// Which build partition a row hash belongs to. Uses high hash bits so
/// it stays independent of the probe table's low-bit slot mask.
#[inline]
fn partition_of(h: u64, nparts: usize) -> usize {
    ((h >> 32) as usize) % nparts
}

/// Build the distinct-key groups of one hash partition: scan every right
/// row, keep the ones whose hash lands in partition `part`. Because all
/// rows of one key share a hash, a key's rows live wholly in one
/// partition and its row list stays in global scan order — which is what
/// keeps parallel build output identical to the sequential build.
fn build_partition(
    right_views: &[KeyView<'_>],
    right_hashes: &[u64],
    part: usize,
    nparts: usize,
) -> BuildPartition {
    let eq = |i: usize, j: usize| {
        right_views
            .iter()
            .zip(right_views)
            .all(|(a, b)| rows_equal(a, i, b, j))
    };
    let mut table = HashTable::default();
    let mut group_repr: Vec<u32> = Vec::new();
    let mut group_hash: Vec<u64> = Vec::new();
    let mut group_rows: Vec<Vec<u32>> = Vec::new();
    for (i, &h) in right_hashes.iter().enumerate() {
        if nparts > 1 && partition_of(h, nparts) != part {
            continue;
        }
        let bucket: &mut Vec<u32> = table.entry(h).or_default();
        match bucket
            .iter()
            .find(|&&g| eq(group_repr[g as usize] as usize, i))
        {
            Some(&g) => group_rows[g as usize].push(i as u32),
            None => {
                let g = group_repr.len() as u32;
                bucket.push(g);
                group_repr.push(i as u32);
                group_hash.push(h);
                group_rows.push(vec![i as u32]);
            }
        }
    }
    BuildPartition {
        group_repr,
        group_hash,
        group_rows,
    }
}

/// Typed hash join: build on the right side, probe with the left.
///
/// Build groups rows by *distinct key* (hash bucket + typed equality
/// against one representative row per key), so probing a duplicate-heavy
/// build side checks equality once per distinct key, not once per row.
/// With a parallel pool, the build is hash-partitioned across workers
/// and the probe runs over left-side morsels (see [`BuildSide::probe`]).
fn join_indices_typed<I: IndexLike + Send + Sync>(
    left_views: &[KeyView<'_>],
    left_rows: usize,
    right_views: &[KeyView<'_>],
    right_rows: usize,
    how: JoinKind,
    pool: &WorkerPool,
) -> (Vec<I>, Vec<I>, bool) {
    let eq = |av: &[KeyView<'_>], i: usize, bv: &[KeyView<'_>], j: usize| {
        av.iter().zip(bv).all(|(a, b)| rows_equal(a, i, b, j))
    };

    // Hash the build side (morsel-parallel when it is big enough), then
    // build its distinct-key groups — one hash partition per worker.
    let right_hashes = hash_rows(right_views, right_rows, pool);
    let nparts = if pool.is_parallel() && right_rows >= PAR_MIN_ROWS {
        pool.threads()
    } else {
        1
    };
    let parts: Vec<BuildPartition> = pool.map((0..nparts).collect(), |_, p| {
        build_partition(right_views, &right_hashes, p, nparts)
    });

    // Merge the partitions and flatten the per-group row lists into CSR
    // form (offsets + one flat row array) so each probe hit walks a
    // contiguous slice. A build side with unique keys — the common
    // dimension-table shape — takes a one-row fast path with no inner
    // loop at all.
    let n_groups: usize = parts.iter().map(|p| p.group_repr.len()).sum();
    let mut group_repr: Vec<u32> = Vec::with_capacity(n_groups);
    let mut group_hash: Vec<u64> = Vec::with_capacity(n_groups);
    let mut offsets: Vec<u32> = Vec::with_capacity(n_groups + 1);
    let mut flat_rows: Vec<u32> = Vec::with_capacity(right_rows);
    offsets.push(0);
    let mut all_unique = true;
    for p in &parts {
        group_repr.extend_from_slice(&p.group_repr);
        group_hash.extend_from_slice(&p.group_hash);
        for rows in &p.group_rows {
            all_unique &= rows.len() == 1;
            flat_rows.extend_from_slice(rows);
            offsets.push(flat_rows.len() as u32);
        }
    }

    // Re-bucket the distinct keys into a flat power-of-two linear-probe
    // table (hash, group) so each probe is an array walk instead of a
    // `HashMap` lookup with a bucket-`Vec` pointer chase. Hash-equal but
    // key-unequal groups sit in one probe cluster; the stored hash gives
    // a cheap reject before the column-wise equality runs.
    let cap = (group_repr.len() * 2).next_power_of_two().max(16);
    let mask = cap - 1;
    let mut slots: Vec<(u64, u32)> = vec![(0, u32::MAX); cap];
    for (g, &h) in group_hash.iter().enumerate() {
        let mut s = (h as usize) & mask;
        while slots[s].1 != u32::MAX {
            s = (s + 1) & mask;
        }
        slots[s] = (h, g as u32);
    }

    // Probe with the left side, preserving left row order. The probe
    // skeleton is generic over a per-row hash and a representative-row
    // equality, so the single-key arms below monomorphize into tight
    // loops that hash inline off the raw slice — no left-side hash array
    // is ever materialized for them.
    let build = BuildSide {
        slots: &slots,
        mask,
        group_repr: &group_repr,
        offsets: &offsets,
        flat_rows: &flat_rows,
        all_unique,
        how,
    };
    let mix1 = |v: u64| v.wrapping_mul(HASH_PRIME);
    // Dictionary keys on both sides: probe on u32 codes. Each left
    // dictionary entry is hashed once and remapped to its build-side
    // code once (the identity when the sides share one `Arc`), so the
    // per-row probe compares two u32s instead of arena bytes.
    if let ([KeyView::Cat(lc, None)], [KeyView::Cat(rc, None)]) = (left_views, right_views) {
        if let Some(remap) = dict_probe_remap(lc, rc) {
            let lhash: Vec<u64> = (0..lc.dict.len())
                .map(|e| mix1(fnv1a(lc.dict.bytes_at(e))))
                .collect();
            return build.probe(
                pool,
                left_rows,
                |i| lhash[lc.codes[i] as usize],
                |i, r| remap[lc.codes[i] as usize] == rc.codes[r],
            );
        }
    }
    match (left_views, right_views) {
        ([KeyView::Int(ld, None)], [KeyView::Int(rd, None)])
        | ([KeyView::Dt(ld, None)], [KeyView::Dt(rd, None)]) => build.probe(
            pool,
            left_rows,
            |i| mix1(ld[i] as u64),
            |i, r| ld[i] == rd[r],
        ),
        ([KeyView::Float(ld, None)], [KeyView::Float(rd, None)]) => build.probe(
            pool,
            left_rows,
            |i| {
                let x = ld[i];
                mix1(if x.is_nan() { u64::MAX } else { x.to_bits() })
            },
            |i, r| {
                let (a, b) = (ld[i], rd[r]);
                // NaN cells are nulls, and null keys match each other.
                (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
            },
        ),
        ([KeyView::Utf8(ld, None)], [KeyView::Utf8(rd, None)]) => build.probe(
            pool,
            left_rows,
            |i| mix1(fnv1a(ld.bytes_at(i))),
            |i, r| ld.bytes_at(i) == rd.bytes_at(r),
        ),
        _ => {
            let left_hashes = hash_rows(left_views, left_rows, pool);
            build.probe(
                pool,
                left_rows,
                |i| left_hashes[i],
                |i, r| eq(left_views, i, right_views, r),
            )
        }
    }
}

/// The probe-side (left) code → build-side (right) code remap for the
/// dictionary join fast path, or `None` when the gate fails. Codes stand
/// in for string equality only when the build dictionary has no duplicate
/// entries (build groups key on *bytes*, so a duplicated entry's group
/// representative could carry either code); unmatched probe entries map
/// to `u32::MAX`, which no real build code equals. Shared-`Arc` sides
/// skip the byte lookups entirely.
fn dict_probe_remap(lc: &Categorical, rc: &Categorical) -> Option<Vec<u32>> {
    if std::sync::Arc::ptr_eq(&lc.dict, &rc.dict) {
        return Some((0..lc.dict.len() as u32).collect());
    }
    let mut index: HashMap<&[u8], u32> = HashMap::with_capacity(rc.dict.len());
    for e in 0..rc.dict.len() {
        if index.insert(rc.dict.bytes_at(e), e as u32).is_some() {
            return None;
        }
    }
    Some(
        (0..lc.dict.len())
            .map(|e| index.get(lc.dict.bytes_at(e)).copied().unwrap_or(u32::MAX))
            .collect(),
    )
}

/// The built (right) side of a typed join, ready to probe: a flat
/// linear-probe table over the distinct keys plus CSR row lists.
struct BuildSide<'t> {
    slots: &'t [(u64, u32)],
    mask: usize,
    group_repr: &'t [u32],
    offsets: &'t [u32],
    flat_rows: &'t [u32],
    all_unique: bool,
    how: JoinKind,
}

impl BuildSide<'_> {
    /// Probe every left row in order; `hash_of` yields the row's key hash
    /// and `eq_repr(i, r)` compares left row `i` against representative
    /// right row `r`. Monomorphizes per caller. With a parallel pool and
    /// a big enough probe side, left-row morsels probe concurrently and
    /// their output runs are stitched back in morsel order — the
    /// concatenation is exactly the sequential probe's output.
    fn probe<I: IndexLike + Send + Sync>(
        &self,
        pool: &WorkerPool,
        left_rows: usize,
        hash_of: impl Fn(usize) -> u64 + Sync,
        eq_repr: impl Fn(usize, usize) -> bool + Sync,
    ) -> (Vec<I>, Vec<I>, bool) {
        if !pool.is_parallel() || left_rows < PAR_MIN_ROWS {
            return self.probe_range(0, left_rows, &hash_of, &eq_repr);
        }
        let morsels = kernel_morsels(left_rows, pool.threads());
        let runs: Vec<(Vec<I>, Vec<I>, bool)> = pool.map(morsels, |_, (start, len)| {
            self.probe_range(start, start + len, &hash_of, &eq_repr)
        });
        let total: usize = runs.iter().map(|(l, _, _)| l.len()).sum();
        let mut left_idx: Vec<I> = Vec::with_capacity(total);
        let mut right_idx: Vec<I> = Vec::with_capacity(total);
        let mut any_miss = false;
        for (l, r, miss) in runs {
            left_idx.extend_from_slice(&l);
            right_idx.extend_from_slice(&r);
            any_miss |= miss;
        }
        (left_idx, right_idx, any_miss)
    }

    /// Probe rows `start..end` of the left side in order.
    fn probe_range<I: IndexLike>(
        &self,
        start: usize,
        end: usize,
        hash_of: &impl Fn(usize) -> u64,
        eq_repr: &impl Fn(usize, usize) -> bool,
    ) -> (Vec<I>, Vec<I>, bool) {
        let mut left_idx: Vec<I> = Vec::with_capacity(end - start);
        let mut right_idx: Vec<I> = Vec::with_capacity(end - start);
        let mut any_miss = false;
        for i in start..end {
            let h = hash_of(i);
            let mut s = (h as usize) & self.mask;
            let hit = loop {
                let (sh, g) = self.slots[s];
                if g == u32::MAX {
                    break None;
                }
                if sh == h && eq_repr(i, self.group_repr[g as usize] as usize) {
                    break Some(g);
                }
                s = (s + 1) & self.mask;
            };
            match hit {
                Some(g) => {
                    if self.all_unique {
                        left_idx.push(I::from_usize(i));
                        right_idx.push(I::from_usize(self.group_repr[g as usize] as usize));
                    } else {
                        let (lo, hi) =
                            (self.offsets[g as usize] as usize, self.offsets[g as usize + 1] as usize);
                        for &j in &self.flat_rows[lo..hi] {
                            left_idx.push(I::from_usize(i));
                            right_idx.push(I::from_usize(j as usize));
                        }
                    }
                }
                None => {
                    if self.how == JoinKind::Left {
                        left_idx.push(I::from_usize(i));
                        right_idx.push(I::SENTINEL);
                        any_miss = true;
                    }
                }
            }
        }
        (left_idx, right_idx, any_miss)
    }
}

/// The seed join for degenerate cross-dtype keys: canonical per-row key
/// strings on both sides (`Int(1)` joins `Str("1")`, exactly as before).
fn join_indices_canonical<I: IndexLike>(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
) -> Result<(Vec<I>, Vec<I>, bool)> {
    let right_keys = key_strings(right, on)?;
    let mut build: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, k) in right_keys.iter().enumerate() {
        build.entry(k.as_str()).or_default().push(i);
    }
    let left_keys = key_strings(left, on)?;
    let mut left_idx: Vec<I> = Vec::new();
    let mut right_idx: Vec<I> = Vec::new();
    let mut any_miss = false;
    for (i, k) in left_keys.iter().enumerate() {
        match build.get(k.as_str()) {
            Some(matches) => {
                for &j in matches {
                    left_idx.push(I::from_usize(i));
                    right_idx.push(I::from_usize(j));
                }
            }
            None => {
                if how == JoinKind::Left {
                    left_idx.push(I::from_usize(i));
                    right_idx.push(I::SENTINEL);
                    any_miss = true;
                }
            }
        }
    }
    Ok((left_idx, right_idx, any_miss))
}

/// Canonical per-row key strings for the join columns.
fn key_strings(frame: &DataFrame, on: &[String]) -> Result<Vec<String>> {
    let cols: Vec<&Series> = on
        .iter()
        .map(|k| frame.column(k))
        .collect::<Result<Vec<_>>>()?;
    Ok((0..frame.num_rows())
        .map(|i| {
            cols.iter()
                .map(|s| s.get(i).to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        })
        .collect())
}

/// Gather with the index sentinel producing a null row (left-join
/// misses).
///
/// Typed: each dtype gathers straight off its raw buffer with null slots
/// normalized to the builder sentinels (0 / NaN / "" / false), so the
/// output is bit-identical to the old per-row `push_scalar` loop without
/// boxing a `Scalar` per cell. Callers with no misses use `Column::take`
/// instead.
fn gather_optional<I: IndexLike>(col: &Column, indices: &[I]) -> Column {
    let n = indices.len();
    // The caller saw at least one miss, so the output always carries a
    // validity mask (matching the builder's `has_null` behaviour).
    let mut validity = BitWriter::with_capacity(n);
    let valid_src = |i: usize| !col.is_null_at(i);
    match col {
        Column::Int64(data, _) => {
            let mut out = Vec::with_capacity(n);
            for &ix in indices {
                if !ix.is_sentinel() && valid_src(ix.idx()) {
                    out.push(data[ix.idx()]);
                    validity.append_bit(true);
                } else {
                    out.push(0);
                    validity.append_bit(false);
                }
            }
            Column::Int64(out, Some(validity.finish()))
        }
        Column::Datetime(data, _) => {
            let mut out = Vec::with_capacity(n);
            for &ix in indices {
                if !ix.is_sentinel() && valid_src(ix.idx()) {
                    out.push(data[ix.idx()]);
                    validity.append_bit(true);
                } else {
                    out.push(0);
                    validity.append_bit(false);
                }
            }
            Column::Datetime(out, Some(validity.finish()))
        }
        Column::Float64(data, _) => {
            let mut out = Vec::with_capacity(n);
            for &ix in indices {
                if !ix.is_sentinel() && valid_src(ix.idx()) {
                    out.push(data[ix.idx()]);
                    validity.append_bit(true);
                } else {
                    out.push(f64::NAN);
                    validity.append_bit(false);
                }
            }
            Column::Float64(out, Some(validity.finish()))
        }
        Column::Bool(data, _) => {
            let mut out = BitWriter::with_capacity(n);
            for &ix in indices {
                if !ix.is_sentinel() && valid_src(ix.idx()) {
                    out.append_bit(data.get(ix.idx()));
                    validity.append_bit(true);
                } else {
                    out.append_bit(false);
                    validity.append_bit(false);
                }
            }
            Column::Bool(out.finish(), Some(validity.finish()))
        }
        Column::Utf8(data, _) => {
            // Byte memcpy per hit row, empty range per miss — no shared
            // pointers, the output arena is compact.
            let mut out = Utf8Builder::with_capacity(n, n * data.avg_row_bytes());
            for &ix in indices {
                if !ix.is_sentinel() && valid_src(ix.idx()) {
                    out.push(data.get(ix.idx()));
                    validity.append_bit(true);
                } else {
                    out.push("");
                    validity.append_bit(false);
                }
            }
            Column::Utf8(out.finish(), Some(validity.finish()))
        }
        // Categorical re-encodes its dictionary in gather order, exactly
        // like the builder did (cold path). Encoded columns take the same
        // builder fallback: `dtype()` routes Dict to a plain Utf8 output
        // and Rle to its value dtype.
        Column::Categorical(..) | Column::Dict(..) | Column::Rle(_) => {
            let mut b = ColumnBuilder::new(col.dtype());
            for &ix in indices {
                if ix.is_sentinel() {
                    b.push_null();
                } else {
                    b.push_scalar(&col.get(ix.idx())).expect("same-dtype gather");
                }
            }
            b.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::df;
    use crate::value::Scalar;

    fn ratings() -> DataFrame {
        df![
            ("movie_id", Column::from_i64(vec![1, 2, 1, 3])),
            ("rating", Column::from_f64(vec![4.0, 3.5, 5.0, 2.0])),
        ]
    }

    fn titles() -> DataFrame {
        df![
            ("movie_id", Column::from_i64(vec![1, 2, 4])),
            ("title", Column::from_strings(vec!["Heat", "Tron", "Solaris"])),
        ]
    }

    #[test]
    fn inner_join_matches_only() {
        let out = merge(&ratings(), &titles(), &["movie_id".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3); // movie 3 has no title; movie 4 no rating
        assert_eq!(out.column_names(), vec!["movie_id", "rating", "title"]);
        assert_eq!(out.column("title").unwrap().get(0), Scalar::Str("Heat".into()));
        // left order preserved: rows for movie 1, 2, 1
        assert_eq!(out.column("movie_id").unwrap().get(2), Scalar::Int(1));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let out = merge(&ratings(), &titles(), &["movie_id".into()], JoinKind::Left).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert!(out.column("title").unwrap().column().is_null_at(3));
    }

    #[test]
    fn one_to_many_duplicates_probe_rows() {
        let dup_titles = df![
            ("movie_id", Column::from_i64(vec![1, 1])),
            ("title", Column::from_strings(vec!["Heat", "Heat (1995)"])),
        ];
        let out = merge(&ratings(), &dup_titles, &["movie_id".into()], JoinKind::Inner).unwrap();
        // movie 1 appears twice on the left, twice on the right => 4 rows
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn overlapping_columns_get_suffixes() {
        let left = df![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_i64(vec![10])),
        ];
        let right = df![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_i64(vec![20])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.column_names(), vec!["k", "v_x", "v_y"]);
        assert_eq!(out.column("v_x").unwrap().get(0), Scalar::Int(10));
        assert_eq!(out.column("v_y").unwrap().get(0), Scalar::Int(20));
    }

    #[test]
    fn multi_key_join() {
        let left = df![
            ("a", Column::from_strings(vec!["x", "x"])),
            ("b", Column::from_i64(vec![1, 2])),
            ("v", Column::from_i64(vec![10, 20])),
        ];
        let right = df![
            ("a", Column::from_strings(vec!["x"])),
            ("b", Column::from_i64(vec![2])),
            ("w", Column::from_i64(vec![99])),
        ];
        let out = merge(&left, &right, &["a".into(), "b".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(20));
    }

    #[test]
    fn missing_key_errors() {
        assert!(merge(&ratings(), &titles(), &["nope".into()], JoinKind::Inner).is_err());
        assert!(merge(&ratings(), &titles(), &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn join_kind_parse() {
        assert_eq!(JoinKind::parse("inner"), Some(JoinKind::Inner));
        assert_eq!(JoinKind::parse("left"), Some(JoinKind::Left));
        assert_eq!(JoinKind::parse("outer"), None);
        assert_eq!(JoinKind::Inner.name(), "inner");
    }

    #[test]
    fn null_keys_join_each_other() {
        // Canonical semantics: null keys render "NaN" and therefore match
        // other null keys (and a literal "NaN" string key).
        let left = df![
            ("k", Column::from_opt_i64(vec![Some(1), None, Some(2)])),
            ("v", Column::from_i64(vec![10, 20, 30])),
        ];
        let right = df![
            ("k", Column::from_opt_i64(vec![None, Some(2)])),
            ("w", Column::from_i64(vec![100, 200])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(20));
        assert_eq!(out.column("w").unwrap().get(0), Scalar::Int(100));
        assert_eq!(out.column("w").unwrap().get(1), Scalar::Int(200));
    }

    #[test]
    fn null_string_key_equals_literal_nan() {
        let left = df![
            ("k", Column::from_opt_strings(vec![None, Some("x".into())])),
            ("v", Column::from_i64(vec![1, 2])),
        ];
        let right = df![
            ("k", Column::from_strings(vec!["NaN"])),
            ("w", Column::from_i64(vec![9])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(1));
    }

    #[test]
    fn cross_dtype_keys_fall_back_to_canonical() {
        // Int 1 joins Str "1" under the seed's rendered-key semantics.
        let left = df![
            ("k", Column::from_i64(vec![1, 2])),
            ("v", Column::from_i64(vec![10, 20])),
        ];
        let right = df![
            ("k", Column::from_strings(vec!["1", "3"])),
            ("w", Column::from_i64(vec![100, 300])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Left).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("w").unwrap().get(0), Scalar::Int(100));
        assert!(out.column("w").unwrap().column().is_null_at(1));
    }

    #[test]
    fn left_join_gathers_typed_nulls_for_every_dtype() {
        let left = df![("k", Column::from_i64(vec![1, 5, 2]))];
        let right = df![
            ("k", Column::from_i64(vec![1, 2])),
            ("i", Column::from_i64(vec![7, 8])),
            ("f", Column::from_f64(vec![0.5, 1.5])),
            ("s", Column::from_strings(vec!["a", "b"])),
            ("b", Column::from_bool(vec![true, false])),
            ("d", Column::from_datetimes(vec![111, 222])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Left).unwrap();
        assert_eq!(out.num_rows(), 3);
        for c in ["i", "f", "s", "b", "d"] {
            let col = out.column(c).unwrap().column();
            assert!(col.is_null_at(1), "{c} miss row is null");
            assert!(!col.is_null_at(0), "{c} hit row is valid");
            assert!(!col.is_null_at(2), "{c} hit row is valid");
        }
        assert_eq!(out.column("s").unwrap().get(2), Scalar::Str("b".into()));
        assert_eq!(out.column("d").unwrap().get(2), Scalar::Datetime(222));
        assert_eq!(out.column("b").unwrap().get(0), Scalar::Bool(true));
    }

    #[test]
    fn float_keys_join_by_bits() {
        let left = df![
            ("k", Column::from_f64(vec![0.0, -0.0, 1.5])),
            ("v", Column::from_i64(vec![1, 2, 3])),
        ];
        let right = df![
            ("k", Column::from_f64(vec![0.0, 1.5])),
            ("w", Column::from_i64(vec![10, 30])),
        ];
        let out = merge(&left, &right, &["k".into()], JoinKind::Left).unwrap();
        // -0.0 renders "-0.0": no match under canonical-string semantics.
        assert_eq!(out.column("w").unwrap().get(0), Scalar::Int(10));
        assert!(out.column("w").unwrap().column().is_null_at(1));
        assert_eq!(out.column("w").unwrap().get(2), Scalar::Int(30));
    }
}
