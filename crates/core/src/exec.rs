//! Execution of the (optimized) task graph on the selected backend.
//!
//! * **Eager backends** (Pandas / Modin): nodes run in topological order;
//!   each result is ref-counted by its consumers and freed the moment the
//!   last consumer has run (§2.6).
//! * **Lazy backend** (Dask): the subgraph is translated into the Dask
//!   engine's own task graph and all required outputs (pending prints +
//!   the forced node + nodes marked for persistence) are computed in one
//!   batched, streaming pass. Operators the Dask engine does not support
//!   (`tail`, `describe`) take the paper's fallback path: materialize to a
//!   "pandas" frame, apply the eager operator, scatter the result back
//!   (§5.2).
//!
//! Every compute first executes pending lazy prints (in program order,
//! §3.3), then materializes the requested value; `live_df` hints drive the
//! §3.5 persistence decisions, and persisted results are dropped once no
//! live dataframe references them.

use crate::context::{render_value, LaFP};
use crate::graph::{Materialized, NodeId, TaskGraph};
use crate::op::{LogicalOp, PrintPiece, Value};
use crate::optimizer;
use lafp_backends::{BackendKind, DaskEngine, DaskNodeId, DaskOp, MemoryReservation};
use lafp_columnar::{ColumnarError, DataFrame, HeapSize, Result, Scalar};
use std::collections::HashMap;
use std::sync::Arc;

/// Force this frame-valued node (plus pending prints) and return the frame.
pub fn compute_frame(ctx: &LaFP, node: NodeId, live: &[NodeId]) -> Result<DataFrame> {
    let value = compute_value(ctx, node, live)?;
    match value {
        Value::Frame(f) => Ok(Arc::try_unwrap(f).unwrap_or_else(|arc| (*arc).clone())),
        other => Err(ColumnarError::InvalidArgument(format!(
            "expected frame from compute, got {other:?}"
        ))),
    }
}

/// Force this scalar-valued node (plus pending prints) and return it.
pub fn compute_scalar(ctx: &LaFP, node: NodeId, live: &[NodeId]) -> Result<Scalar> {
    let value = compute_value(ctx, node, live)?;
    match value {
        Value::Scalar(s) => Ok(s),
        other => Err(ColumnarError::InvalidArgument(format!(
            "expected scalar from compute, got {other:?}"
        ))),
    }
}

/// `pd.flush()`: execute pending prints only (end of program — nothing is
/// live afterwards, so all persisted results are released too).
pub fn flush(ctx: &LaFP) -> Result<()> {
    run_batch(ctx, None, &[])?;
    Ok(())
}

fn compute_value(ctx: &LaFP, node: NodeId, live: &[NodeId]) -> Result<Value> {
    let value = run_batch(ctx, Some(node), live)?;
    Ok(value.expect("target value produced"))
}

/// The shared compute path: pending prints + optional target, one batch.
fn run_batch(ctx: &LaFP, target: Option<NodeId>, live: &[NodeId]) -> Result<Option<Value>> {
    let mut inner = ctx.inner.lock();
    let prints: Vec<NodeId> = inner.pending_prints.drain(..).collect();
    let mut roots = prints.clone();
    if let Some(t) = target {
        roots.push(t);
    }
    if roots.is_empty() {
        return Ok(None);
    }
    let opt_roots = optimizer::optimize(&mut inner.graph, &roots, live, ctx.config.optimizer);
    let target_node = target.map(|_| *opt_roots.last().expect("target kept"));
    let print_nodes = &opt_roots[..opt_roots.len() - usize::from(target.is_some())];

    // Execute the value-producing part of the graph.
    let exec_result = if ctx.config.backend == BackendKind::Dask {
        run_dask(ctx, &mut inner, &opt_roots)
    } else {
        run_eager(ctx, &mut inner, &opt_roots)
    };
    let mut values = exec_result?;

    // Render prints in order.
    for &p in print_nodes {
        let (pieces, inputs) = match &inner.graph.node(p).op {
            LogicalOp::Print(pieces) => (pieces.clone(), inner.graph.node(p).inputs.clone()),
            _ => continue,
        };
        let mut line = String::new();
        for piece in &pieces {
            match piece {
                PrintPiece::Text(t) => line.push_str(t),
                PrintPiece::Value(i) => {
                    let input = inputs[*i];
                    let v = values
                        .get(&input)
                        .cloned()
                        .or_else(|| {
                            inner.graph.node(input).result.as_ref().map(|m| m.value.clone())
                        })
                        .unwrap_or(Value::None);
                    line.push_str(&render_value(&v, ctx.config.print_rows));
                }
            }
        }
        if inner.echo {
            println!("{line}");
        }
        inner.output.push(line);
        // Executed prints hold an empty result so they never re-run.
        inner.graph.node_mut(p).result = Some(Materialized {
            value: Value::None,
            reservation: MemoryReservation::empty(ctx.tracker()),
        });
    }

    // Harvest the target value before releasing temporaries.
    let target_value = target_node.map(|t| {
        values
            .remove(&t)
            .or_else(|| inner.graph.node(t).result.as_ref().map(|m| m.value.clone()))
            .expect("target computed")
    });

    // Release persisted results no longer reachable from live frames (§3.5).
    release_dead_persists(&mut inner, live);

    Ok(target_value)
}

fn release_dead_persists(inner: &mut crate::context::ContextInner, live: &[NodeId]) {
    let live_reach = inner.graph.reachable_through_results(live);
    inner.persisted.retain(|&p| {
        if live_reach.contains(&p) {
            true
        } else {
            let node = inner.graph.node_mut(p);
            node.persist = false;
            node.result = None;
            false
        }
    });
}

// ---------------------------------------------------------------------------
// Eager execution (§2.6)
// ---------------------------------------------------------------------------

fn run_eager(
    ctx: &LaFP,
    inner: &mut crate::context::ContextInner,
    roots: &[NodeId],
) -> Result<HashMap<NodeId, Value>> {
    let order = inner.graph.topo_order(roots);
    let subset = inner.graph.reachable(roots);
    let mut counts = inner.graph.consumer_counts(&subset);
    // Roots are consumed by the harvest step.
    for &r in roots {
        *counts.entry(r).or_default() += 1;
    }
    let mut out: HashMap<NodeId, Value> = HashMap::new();
    for id in order {
        if inner.graph.node(id).result.is_some() {
            if let Some(m) = inner.graph.node(id).result.as_ref() {
                out.insert(id, m.value.clone());
            }
            continue;
        }
        if matches!(inner.graph.node(id).op, LogicalOp::Print(_)) {
            continue; // rendered by the caller, after values exist
        }
        let value = eval_eager(ctx, &inner.graph, id)?;
        let bytes = match &value {
            Value::Frame(f) => f.heap_size(),
            _ => 0,
        };
        let reservation = ctx.tracker().charge(bytes)?;
        out.insert(id, value.clone());
        inner.graph.node_mut(id).result = Some(Materialized { value, reservation });
        if inner.graph.node(id).persist && !inner.persisted.contains(&id) {
            inner.persisted.push(id);
        }
        // Ref-count inputs: free results whose consumers are all done.
        for input in inner.graph.node(id).inputs.clone() {
            if let Some(c) = counts.get_mut(&input) {
                *c -= 1;
                if *c == 0 && !inner.graph.node(input).persist {
                    inner.graph.node_mut(input).result = None;
                }
            }
        }
    }
    // Roots release their extra count now that values are harvested; the
    // caller received clones (Arc) so dropping the stored result is safe
    // for non-persisted roots.
    for &r in roots {
        if !inner.graph.node(r).persist {
            inner.graph.node_mut(r).result = None;
        }
    }
    // Re-mark print results (cleared above) as executed.
    Ok(out)
}

fn eval_eager(ctx: &LaFP, graph: &TaskGraph, id: NodeId) -> Result<Value> {
    let node = graph.node(id);
    let input_frame = |i: usize| -> Result<Arc<DataFrame>> {
        let input = node.inputs[i];
        match graph.node(input).result.as_ref().map(|m| &m.value) {
            Some(Value::Frame(f)) => Ok(Arc::clone(f)),
            other => Err(ColumnarError::InvalidArgument(format!(
                "input {input} of {id} not materialized as frame (got {other:?})"
            ))),
        }
    };
    let engine = &ctx.eager;
    let value = match &node.op {
        LogicalOp::ReadCsv { path, options } => {
            Value::Frame(Arc::new(engine.read_csv(path, options)?))
        }
        LogicalOp::FromFrame(frame) => Value::Frame(Arc::clone(frame)),
        LogicalOp::Filter(e) => Value::Frame(Arc::new(engine.filter(&*input_frame(0)?, e)?)),
        LogicalOp::WithColumn(name, e) => {
            Value::Frame(Arc::new(engine.with_column(&*input_frame(0)?, name, e)?))
        }
        LogicalOp::Select(cols) => Value::Frame(Arc::new(engine.select(&*input_frame(0)?, cols)?)),
        LogicalOp::DropColumns(cols) => {
            Value::Frame(Arc::new(engine.drop(&*input_frame(0)?, cols)?))
        }
        LogicalOp::Rename(mapping) => {
            Value::Frame(Arc::new(engine.rename(&*input_frame(0)?, mapping)?))
        }
        LogicalOp::FillNa(v) => Value::Frame(Arc::new(engine.fillna(&*input_frame(0)?, v)?)),
        LogicalOp::DropDuplicates(subset) => {
            Value::Frame(Arc::new(engine.drop_duplicates(&*input_frame(0)?, subset)?))
        }
        LogicalOp::GroupByAgg(spec) => {
            Value::Frame(Arc::new(engine.group_by(&*input_frame(0)?, spec)?))
        }
        LogicalOp::Merge { on, how } => Value::Frame(Arc::new(engine.merge(
            &*input_frame(0)?,
            &*input_frame(1)?,
            on,
            *how,
        )?)),
        LogicalOp::Sort(options) => {
            Value::Frame(Arc::new(engine.sort_values(&*input_frame(0)?, options)?))
        }
        LogicalOp::Head(n) => Value::Frame(Arc::new(engine.head(&*input_frame(0)?, *n)?)),
        LogicalOp::Tail(n) => Value::Frame(Arc::new(engine.tail(&*input_frame(0)?, *n)?)),
        LogicalOp::Describe => Value::Frame(Arc::new(engine.describe(&*input_frame(0)?)?)),
        LogicalOp::Concat => {
            Value::Frame(Arc::new(input_frame(0)?.concat(&*input_frame(1)?)?))
        }
        LogicalOp::Reduce { column, agg } => {
            Value::Scalar(engine.reduce(&*input_frame(0)?, column, *agg)?)
        }
        LogicalOp::Len => Value::Scalar(Scalar::Int(input_frame(0)?.num_rows() as i64)),
        LogicalOp::Print(_) => Value::None,
    };
    Ok(value)
}

// ---------------------------------------------------------------------------
// Dask execution (§2.5–2.6)
// ---------------------------------------------------------------------------

fn run_dask(
    ctx: &LaFP,
    inner: &mut crate::context::ContextInner,
    roots: &[NodeId],
) -> Result<HashMap<NodeId, Value>> {
    let mut engine = DaskEngine::new(Arc::clone(ctx.tracker()), ctx.config.chunk_rows);
    let mut memo: HashMap<NodeId, DaskNodeId> = HashMap::new();

    // The batch must produce: every print's inputs, the target(s), and
    // every node marked persist within the executed subgraph.
    let subset = inner.graph.reachable(roots);
    let mut wanted: Vec<NodeId> = Vec::new();
    for &r in roots {
        match &inner.graph.node(r).op {
            LogicalOp::Print(_) => {
                for &i in &inner.graph.node(r).inputs {
                    if !wanted.contains(&i) {
                        wanted.push(i);
                    }
                }
            }
            _ => {
                if !wanted.contains(&r) {
                    wanted.push(r);
                }
            }
        }
    }
    let mut to_persist: Vec<NodeId> = subset
        .iter()
        .copied()
        .filter(|&id| inner.graph.node(id).persist && inner.graph.node(id).result.is_none())
        .collect();
    to_persist.sort();
    for &p in &to_persist {
        if !wanted.contains(&p) {
            wanted.push(p);
        }
    }

    // Translate and batch-compute.
    let mut dask_roots = Vec::with_capacity(wanted.len());
    for &w in &wanted {
        dask_roots.push(translate(ctx, &mut inner.graph, &mut engine, &mut memo, w)?);
    }
    let results = engine.compute_batch(&dask_roots)?;

    let mut out: HashMap<NodeId, Value> = HashMap::new();
    for ((node, _dask), (value, reservation)) in wanted.iter().zip(&dask_roots).zip(results) {
        let value = match value {
            lafp_backends::DaskValue::Frame(f) => Value::Frame(Arc::new(f)),
            lafp_backends::DaskValue::Scalar(s) => Value::Scalar(s),
        };
        if to_persist.contains(node) {
            inner.graph.node_mut(*node).result = Some(Materialized {
                value: value.clone(),
                reservation,
            });
            if !inner.persisted.contains(node) {
                inner.persisted.push(*node);
            }
        }
        out.insert(*node, value);
    }
    Ok(out)
}

/// Translate a LaFP node into the Dask engine graph, memoized. Nodes with
/// materialized results become `FromFrame` sources; ops the engine lacks
/// (`tail`, `describe`) take the pandas-fallback path.
fn translate(
    ctx: &LaFP,
    graph: &mut TaskGraph,
    engine: &mut DaskEngine,
    memo: &mut HashMap<NodeId, DaskNodeId>,
    id: NodeId,
) -> Result<DaskNodeId> {
    if let Some(&d) = memo.get(&id) {
        return Ok(d);
    }
    if let Some(m) = graph.node(id).result.as_ref() {
        if let Value::Frame(f) = &m.value {
            let d = engine.add(DaskOp::FromFrame(Arc::clone(f)), vec![]);
            memo.insert(id, d);
            return Ok(d);
        }
    }
    let op = graph.node(id).op.clone();
    let inputs = graph.node(id).inputs.clone();
    let d = match op {
        LogicalOp::ReadCsv { path, options } => engine.add(
            DaskOp::ReadCsv {
                path,
                options,
                limit: None,
            },
            vec![],
        ),
        LogicalOp::FromFrame(f) => engine.add(DaskOp::FromFrame(f), vec![]),
        LogicalOp::Filter(e) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Filter(e), vec![i])
        }
        LogicalOp::WithColumn(name, e) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::WithColumn(name, e), vec![i])
        }
        LogicalOp::Select(cols) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Select(cols), vec![i])
        }
        LogicalOp::DropColumns(cols) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::DropColumns(cols), vec![i])
        }
        LogicalOp::Rename(mapping) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Rename(mapping), vec![i])
        }
        LogicalOp::FillNa(v) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::FillNa(v), vec![i])
        }
        LogicalOp::DropDuplicates(subset) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::DropDuplicates(subset), vec![i])
        }
        LogicalOp::GroupByAgg(spec) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::GroupByAgg(spec), vec![i])
        }
        LogicalOp::Merge { on, how } => {
            let l = translate(ctx, graph, engine, memo, inputs[0])?;
            let r = translate(ctx, graph, engine, memo, inputs[1])?;
            engine.add(DaskOp::Merge { on, how }, vec![l, r])
        }
        LogicalOp::Sort(options) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Sort(options), vec![i])
        }
        LogicalOp::Head(n) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Head(n), vec![i])
        }
        LogicalOp::Concat => {
            let l = translate(ctx, graph, engine, memo, inputs[0])?;
            let r = translate(ctx, graph, engine, memo, inputs[1])?;
            engine.add(DaskOp::Concat, vec![l, r])
        }
        LogicalOp::Reduce { column, agg } => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Reduce { column, agg }, vec![i])
        }
        LogicalOp::Len => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            engine.add(DaskOp::Len, vec![i])
        }
        // Paper §5.2: ops the backend lacks fall back to Pandas — gather
        // the input, run the eager kernel, scatter the result back.
        LogicalOp::Tail(n) => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            let (frame, _res) = engine.gather(i)?;
            let value = ctx.eager.tail(&frame, n)?;
            let reservation = ctx.tracker().charge(value.heap_size())?;
            let arc = Arc::new(value);
            graph.node_mut(id).result = Some(Materialized {
                value: Value::Frame(Arc::clone(&arc)),
                reservation,
            });
            engine.add(DaskOp::FromFrame(arc), vec![])
        }
        LogicalOp::Describe => {
            let i = translate(ctx, graph, engine, memo, inputs[0])?;
            let (frame, _res) = engine.gather(i)?;
            let value = ctx.eager.describe(&frame)?;
            let reservation = ctx.tracker().charge(value.heap_size())?;
            let arc = Arc::new(value);
            graph.node_mut(id).result = Some(Materialized {
                value: Value::Frame(Arc::clone(&arc)),
                reservation,
            });
            engine.add(DaskOp::FromFrame(arc), vec![])
        }
        LogicalOp::Print(_) => {
            return Err(ColumnarError::InvalidArgument(
                "print nodes are executed by the LaFP layer, not the backend".into(),
            ))
        }
    };
    memo.insert(id, d);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LafpConfig;
    use crate::frame::PrintArg;
    use lafp_columnar::column::Column;
    use lafp_columnar::csv::write_csv;
    use lafp_columnar::{df, AggKind};
    use lafp_expr::Expr;
    use std::path::PathBuf;

    fn temp_csv(rows: usize) -> PathBuf {
        let df = df![
            (
                "fare",
                Column::from_f64((0..rows).map(|i| i as f64 - 3.0).collect())
            ),
            (
                "day",
                Column::from_i64((0..rows).map(|i| (i % 7) as i64).collect())
            ),
            (
                "unused",
                Column::from_strings((0..rows).map(|i| format!("u{i}")).collect::<Vec<_>>())
            ),
        ];
        let dir = std::env::temp_dir().join("lafp-core-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "c{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        write_csv(&df, &path).unwrap();
        path
    }

    fn sessions() -> Vec<LaFP> {
        BackendKind::ALL
            .into_iter()
            .map(|backend| {
                LaFP::with_config(LafpConfig {
                    backend,
                    ..Default::default()
                })
            })
            .collect()
    }

    #[test]
    fn figure3_pipeline_on_all_backends() {
        let path = temp_csv(70);
        let mut outputs = Vec::new();
        for pd in sessions() {
            let df = pd.read_csv(&path);
            let df = df.filter(Expr::col("fare").gt(Expr::lit_float(0.0)));
            let g = df.groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
            let result = g.compute(&[]).unwrap();
            outputs.push(result);
        }
        assert_eq!(outputs[0], outputs[1], "pandas == modin");
        assert_eq!(outputs[0], outputs[2], "pandas == dask");
        assert_eq!(outputs[0].num_rows(), 7);
    }

    #[test]
    fn lazy_print_defers_and_orders_output() {
        let path = temp_csv(30);
        for pd in sessions() {
            let df = pd.read_csv(&path);
            let head = df.head(2);
            head.print();
            let mean = df.reduce("fare", AggKind::Mean);
            pd.print(vec![
                PrintArg::Text("Average fare: ".into()),
                PrintArg::Scalar(mean),
            ]);
            assert!(
                pd.take_output().is_empty(),
                "nothing printed before flush ({})",
                pd.config().backend
            );
            pd.flush().unwrap();
            let out = pd.take_output();
            assert_eq!(out.len(), 2, "{}", pd.config().backend);
            assert!(out[0].contains("fare"), "head table first");
            assert!(out[1].starts_with("Average fare: "), "f-string second");
        }
    }

    #[test]
    fn compute_flushes_pending_prints_first() {
        let path = temp_csv(20);
        let pd = LaFP::new();
        let df = pd.read_csv(&path);
        df.head(1).print();
        let g = df.groupby_agg(vec!["day".into()], "fare", AggKind::Count);
        let _ = g.compute(&[]).unwrap();
        let out = pd.take_output();
        assert_eq!(out.len(), 1, "pending print executed by compute (§3.4)");
    }

    #[test]
    fn common_reuse_persists_shared_frame() {
        let path = temp_csv(50);
        for pd in sessions() {
            let df = pd
                .read_csv(&path)
                .filter(Expr::col("fare").gt(Expr::lit_float(0.0)));
            let sum = df.groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
            // compute with df live: shared node (the filter) persists.
            let _ = sum.compute(&[&df]).unwrap();
            assert!(
                pd.inner.lock().graph.node(df.node()).result.is_some(),
                "{}: filtered frame persisted",
                pd.config().backend
            );
            let held = pd.tracker().current();
            assert!(held > 0, "{}: persist charged", pd.config().backend);
            // Second compute reuses it; with live=[] it is then released.
            let mean = df.reduce("fare", AggKind::Mean);
            let v = mean.compute(&[]).unwrap();
            assert!(matches!(v, Scalar::Float(_)));
            assert!(
                pd.inner.lock().graph.node(df.node()).result.is_none(),
                "{}: persist released after last use",
                pd.config().backend
            );
        }
    }

    #[test]
    fn ablation_no_common_reuse_recomputes() {
        let path = temp_csv(50);
        let pd = LaFP::with_config(LafpConfig {
            optimizer: optimizer::OptimizerFlags {
                common_reuse: false,
                ..Default::default()
            },
            ..Default::default()
        });
        let df = pd
            .read_csv(&path)
            .filter(Expr::col("fare").gt(Expr::lit_float(0.0)));
        let sum = df.groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
        let _ = sum.compute(&[&df]).unwrap();
        assert!(pd.inner.lock().graph.node(df.node()).result.is_none());
    }

    #[test]
    fn pushdown_preserves_results_on_all_backends() {
        let path = temp_csv(60);
        for pd in sessions() {
            // Feature-add THEN filter: pushdown will reorder underneath.
            let df = pd.read_csv(&path);
            let df = df.with_column(
                "double",
                Expr::col("fare").arith(lafp_columnar::column::ArithOp::Mul, Expr::lit_float(2.0)),
            );
            let df = df.filter(Expr::col("fare").gt(Expr::lit_float(0.0)));
            let out = df.compute(&[]).unwrap();
            assert_eq!(out.num_rows(), 56, "{}", pd.config().backend);
            assert!(out.has_column("double"));
        }
    }

    #[test]
    fn tail_and_describe_fallback_on_dask() {
        let path = temp_csv(25);
        let pd = LaFP::with_config(LafpConfig {
            backend: BackendKind::Dask,
            ..Default::default()
        });
        let df = pd.read_csv(&path);
        let t = df.tail(3).compute(&[]).unwrap();
        assert_eq!(t.num_rows(), 3);
        let d = df.describe().compute(&[]).unwrap();
        assert_eq!(d.num_rows(), 8);
    }

    #[test]
    fn oom_surfaces_as_error_not_panic() {
        let path = temp_csv(5000);
        let pd = LaFP::with_config(LafpConfig {
            backend: BackendKind::Pandas,
            memory_budget: 20_000,
            ..Default::default()
        });
        let df = pd.read_csv(&path);
        let err = df.compute(&[]).unwrap_err();
        assert!(matches!(err, ColumnarError::OutOfMemory { .. }));
    }

    #[test]
    fn dask_streams_within_budget_where_pandas_cannot() {
        let path = temp_csv(5000);
        let budget = 400_000;
        let pandas = LaFP::with_config(LafpConfig {
            backend: BackendKind::Pandas,
            memory_budget: budget,
            ..Default::default()
        });
        let df = pandas.read_csv(&path);
        let g = df.groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
        assert!(g.compute(&[]).is_err(), "pandas OOMs");

        let dask = LaFP::with_config(LafpConfig {
            backend: BackendKind::Dask,
            memory_budget: budget,
            chunk_rows: 256,
            ..Default::default()
        });
        let df = dask.read_csv(&path);
        let g = df.groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
        let out = g.compute(&[]).unwrap();
        assert_eq!(out.num_rows(), 7, "dask streams within the same budget");
    }

    #[test]
    fn explain_shows_figure6_shape() {
        let path = temp_csv(10);
        let pd = LaFP::new();
        let df = pd
            .read_csv(&path)
            .filter(Expr::col("fare").gt(Expr::lit_float(0.0)))
            .groupby_agg(vec!["day".into()], "fare", AggKind::Sum);
        df.print();
        let plan = pd.explain(&[]);
        assert!(plan.contains("read_csv"));
        assert!(plan.contains("filter"));
        assert!(plan.contains("groupby"));
        assert!(plan.contains("print"));
        pd.flush().unwrap();
    }
}
