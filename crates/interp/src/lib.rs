//! # lafp-interp — executing PandaScript programs
//!
//! The paper evaluates six configurations (§5): plain Pandas / Modin /
//! Dask (the baselines; for Dask, the manually-ported program that forces
//! `compute()` at prints and external calls), and LPandas / LModin / LDask
//! (the same program run through the JIT rewriter on the LaFP runtime).
//!
//! This crate is the executor for all six:
//!
//! * [`ExecMode::Eager`] — statement-by-statement eager evaluation on the
//!   Pandas-like or Modin-like engine; every value a program variable
//!   holds is materialized (and charged against the memory budget).
//! * [`ExecMode::PlainDask`] — the "manual Dask port": lazy graphs, but
//!   each print/plot/aggregate forces a separate `compute()` pass, with no
//!   cross-statement optimization and no persistence hints.
//! * [`ExecMode::Lafp`] — the full LaFP runtime (lazy task graph, runtime
//!   optimizer, lazy print, `compute(live_df=...)`).
//!
//! [`regress`] provides the order-insensitive result hashing used by the
//! paper's regression framework (§5.2) to check that every optimized
//! configuration matches unoptimized Pandas.

#![warn(missing_docs)]

pub mod interp;
pub mod regress;
pub mod value;

pub use interp::{ExecMode, Interp, RunOutcome};
pub use regress::result_hash;
