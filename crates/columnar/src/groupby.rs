//! Hash group-by aggregation, including the partial-aggregate form used by
//! the out-of-core (Dask-like) backend to keep the working set small.
//!
//! Groups are keyed by a `u64` row hash (the same FNV-1a mix
//! [`Column::hash_into`] uses everywhere) over a typed key store: key
//! values live in per-column typed vectors, the hash table maps a hash to
//! the group indexes that share it, and equality is checked column-wise on
//! collision. The per-row update path never renders a key to a `String`
//! and never boxes a cell into a [`Scalar`] — both were the dominant cost
//! of the old accumulator.

use crate::bitmap::Bitmap;
use crate::column::{fnv1a, Column, ColumnBuilder, HashTable, HASH_PRIME};
use crate::dtype::DType;
use crate::error::{ColumnarError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use crate::strings::Utf8Col;
use crate::value::Scalar;
use std::collections::HashSet;

/// Aggregate functions supported by `groupby(...)[col].agg(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of the value column.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Count of non-null values.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Distinct count. (Not decomposable: the streaming form keeps a set.)
    NUnique,
}

impl AggKind {
    /// Parse the pandas method name.
    pub fn parse(name: &str) -> Option<AggKind> {
        match name {
            "sum" => Some(AggKind::Sum),
            "mean" => Some(AggKind::Mean),
            "count" | "size" => Some(AggKind::Count),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "nunique" => Some(AggKind::NUnique),
            _ => None,
        }
    }

    /// Method name as written in programs.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Mean => "mean",
            AggKind::Count => "count",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::NUnique => "nunique",
        }
    }
}

/// A group-by request: grouping keys, value column, aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBySpec {
    /// Key column names.
    pub keys: Vec<String>,
    /// The aggregated value column.
    pub value: String,
    /// Which aggregate to compute.
    pub agg: AggKind,
}

// ---------------------------------------------------------------------------
// Typed value access
// ---------------------------------------------------------------------------

/// A borrowed, type-dispatched view of a value column: matched once per
/// chunk so the per-row update loop is branch-cheap and allocation-free.
enum ColView<'a> {
    I64(&'a [i64], Option<&'a Bitmap>),
    F64(&'a [f64], Option<&'a Bitmap>),
    Bool(&'a Bitmap, Option<&'a Bitmap>),
    Dt(&'a [i64], Option<&'a Bitmap>),
    Str(&'a Utf8Col, Option<&'a Bitmap>),
    Cat(&'a crate::column::Categorical, Option<&'a Bitmap>),
}

impl<'a> ColView<'a> {
    fn new(col: &'a Column) -> ColView<'a> {
        match col {
            Column::Int64(d, v) => ColView::I64(d, v.as_ref()),
            Column::Float64(d, v) => ColView::F64(d, v.as_ref()),
            Column::Bool(d, v) => ColView::Bool(d, v.as_ref()),
            Column::Datetime(d, v) => ColView::Dt(d, v.as_ref()),
            Column::Utf8(d, v) => ColView::Str(d, v.as_ref()),
            Column::Categorical(c, v) | Column::Dict(c, v) => ColView::Cat(c, v.as_ref()),
            // `update_inner` expands run-length values before building a
            // view; a borrowed view cannot own the expansion.
            Column::Rle(_) => unreachable!("RLE values are decoded before view construction"),
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        let masked = |m: &Option<&Bitmap>| m.is_some_and(|m| !m.get(i));
        match self {
            ColView::F64(d, m) => d[i].is_nan() || masked(m),
            ColView::I64(_, m)
            | ColView::Bool(_, m)
            | ColView::Dt(_, m)
            | ColView::Str(_, m)
            | ColView::Cat(_, m) => masked(m),
        }
    }

}

// ---------------------------------------------------------------------------
// Typed aggregate state
// ---------------------------------------------------------------------------

/// A typed min/max cell: the old `Option<Scalar>` forced a clone (and for
/// strings a heap allocation) on every new extreme. String extremes own
/// their bytes (`Box<str>`) — the arena a candidate came from may be a
/// transient morsel view, and an extreme only replaces when it improves,
/// so the copy is rare.
#[derive(Debug, Clone, PartialEq)]
enum Extreme {
    None,
    I(i64),
    F(f64),
    B(bool),
    D(i64),
    S(Box<str>),
}

impl Extreme {
    fn to_scalar(&self) -> Scalar {
        match self {
            Extreme::None => Scalar::Null,
            Extreme::I(v) => Scalar::Int(*v),
            Extreme::F(v) => Scalar::Float(*v),
            Extreme::B(v) => Scalar::Bool(*v),
            Extreme::D(v) => Scalar::Datetime(*v),
            Extreme::S(v) => Scalar::Str(v.to_string()),
        }
    }

    /// `Scalar::cmp_values` over the typed representation.
    fn cmp(&self, other: &Extreme) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Extreme::S(a), Extreme::S(b)) => a.as_ref().cmp(b.as_ref()),
            (Extreme::B(a), Extreme::B(b)) => a.cmp(b),
            (Extreme::D(a), Extreme::D(b)) => a.cmp(b),
            _ => {
                let num = |e: &Extreme| -> Option<f64> {
                    match e {
                        Extreme::I(v) => Some(*v as f64),
                        Extreme::F(v) => Some(*v),
                        Extreme::B(v) => Some(if *v { 1.0 } else { 0.0 }),
                        Extreme::D(v) => Some(*v as f64),
                        _ => None,
                    }
                };
                match (num(self), num(other)) {
                    (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                    _ => self.to_scalar().cmp_values(&other.to_scalar()),
                }
            }
        }
    }
}

/// Typed distinct-value set for `nunique`. Starts untyped, specializes on
/// first insert, and falls back to canonical strings if a value column
/// changes dtype mid-stream (which only happens in degenerate inputs).
#[derive(Debug, Clone, Default)]
enum Distinct {
    #[default]
    Empty,
    I(HashSet<i64>),
    F(HashSet<u64>),
    D(HashSet<i64>),
    B {
        t: bool,
        f: bool,
    },
    S(HashSet<Box<str>>),
    Canon(HashSet<String>),
}

impl Distinct {
    fn len(&self) -> usize {
        match self {
            Distinct::Empty => 0,
            Distinct::I(s) => s.len(),
            Distinct::F(s) => s.len(),
            Distinct::D(s) => s.len(),
            Distinct::B { t, f } => usize::from(*t) + usize::from(*f),
            Distinct::S(s) => s.len(),
            Distinct::Canon(s) => s.len(),
        }
    }

    /// Downgrade to canonical display strings (the old representation).
    fn canonize(&mut self) {
        let strings: HashSet<String> = match self {
            Distinct::Empty => HashSet::new(),
            Distinct::I(s) => s.iter().map(|v| Scalar::Int(*v).to_string()).collect(),
            Distinct::F(s) => s
                .iter()
                .map(|&bits| Scalar::Float(f64::from_bits(bits)).to_string())
                .collect(),
            Distinct::D(s) => s.iter().map(|v| Scalar::Datetime(*v).to_string()).collect(),
            Distinct::B { t, f } => {
                let mut out = HashSet::new();
                if *t {
                    out.insert("True".to_string());
                }
                if *f {
                    out.insert("False".to_string());
                }
                out
            }
            Distinct::S(s) => s.iter().map(|v| v.to_string()).collect(),
            Distinct::Canon(s) => std::mem::take(s),
        };
        *self = Distinct::Canon(strings);
    }

    fn insert_i64(&mut self, v: i64) {
        match self {
            Distinct::Empty => *self = Distinct::I(HashSet::from([v])),
            Distinct::I(s) => {
                s.insert(v);
            }
            _ => {
                self.canonize();
                self.insert_i64(v);
            }
        }
    }

    fn insert_f64(&mut self, v: f64) {
        match self {
            Distinct::Empty => *self = Distinct::F(HashSet::from([v.to_bits()])),
            Distinct::F(s) => {
                s.insert(v.to_bits());
            }
            _ => {
                self.canonize();
                self.insert_f64(v);
            }
        }
    }

    fn insert_dt(&mut self, v: i64) {
        match self {
            Distinct::Empty => *self = Distinct::D(HashSet::from([v])),
            Distinct::D(s) => {
                s.insert(v);
            }
            _ => {
                self.canonize();
                self.insert_dt(v);
            }
        }
    }

    fn insert_bool(&mut self, v: bool) {
        match self {
            Distinct::Empty => *self = Distinct::B { t: v, f: !v },
            Distinct::B { t, f } => {
                if v {
                    *t = true;
                } else {
                    *f = true;
                }
            }
            _ => {
                self.canonize();
                self.insert_bool(v);
            }
        }
    }

    fn insert_str(&mut self, v: &str) {
        match self {
            Distinct::Empty => *self = Distinct::S(HashSet::from([Box::from(v)])),
            Distinct::S(s) => {
                // Probe by &str; the byte copy only happens on first sight.
                if !s.contains(v) {
                    s.insert(Box::from(v));
                }
            }
            _ => {
                self.canonize();
                self.insert_str(v);
            }
        }
    }

    fn insert_canon(&mut self, v: String) {
        if !matches!(self, Distinct::Canon(_)) {
            self.canonize();
        }
        if let Distinct::Canon(s) = self {
            s.insert(v);
        }
    }

    fn merge(&mut self, other: &Distinct) {
        match (&mut *self, other) {
            (_, Distinct::Empty) => {}
            (Distinct::Empty, o) => *self = o.clone(),
            (Distinct::I(a), Distinct::I(b)) => a.extend(b),
            (Distinct::F(a), Distinct::F(b)) => a.extend(b),
            (Distinct::D(a), Distinct::D(b)) => a.extend(b),
            (Distinct::B { t, f }, Distinct::B { t: t2, f: f2 }) => {
                *t |= t2;
                *f |= f2;
            }
            (Distinct::S(a), Distinct::S(b)) => {
                for v in b {
                    if !a.contains(v) {
                        a.insert(v.clone());
                    }
                }
            }
            _ => {
                self.canonize();
                let mut theirs = other.clone();
                theirs.canonize();
                if let (Distinct::Canon(a), Distinct::Canon(b)) = (self, theirs) {
                    a.extend(b);
                }
            }
        }
    }

    fn heap_size(&self) -> usize {
        match self {
            Distinct::Empty | Distinct::B { .. } => 0,
            Distinct::I(s) | Distinct::D(s) => s.capacity() * 16,
            Distinct::F(s) => s.capacity() * 16,
            Distinct::S(s) => s.capacity() * 16 + s.iter().map(|v| v.len()).sum::<usize>(),
            Distinct::Canon(s) => {
                s.capacity() * 32 + s.iter().map(String::capacity).sum::<usize>()
            }
        }
    }
}

/// Running per-group state; merging two states gives the state of the
/// concatenated input, which is what makes streaming aggregation possible.
/// All fields are typed: the hot `update` path never constructs a
/// [`Scalar`] and never heap-allocates for numeric values.
#[derive(Debug, Clone)]
pub struct AggState {
    sum: f64,
    int_sum: i64,
    count: u64,
    min: Extreme,
    max: Extreme,
    distinct: Distinct,
    value_is_int: bool,
}

impl AggState {
    fn new(value_is_int: bool) -> AggState {
        AggState {
            sum: 0.0,
            int_sum: 0,
            count: 0,
            min: Extreme::None,
            max: Extreme::None,
            distinct: Distinct::Empty,
            value_is_int,
        }
    }

    /// Fold row `i` of `view` into this state. Caller guarantees the row
    /// is non-null.
    #[inline]
    fn update_at(&mut self, view: &ColView<'_>, i: usize, agg: AggKind) {
        self.count += 1;
        match agg {
            AggKind::Sum | AggKind::Mean => match view {
                ColView::I64(d, _) => {
                    self.sum += d[i] as f64;
                    self.int_sum = self.int_sum.wrapping_add(d[i]);
                }
                ColView::F64(d, _) => self.sum += d[i],
                ColView::Bool(d, _) => {
                    let v = i64::from(d.get(i));
                    self.sum += v as f64;
                    self.int_sum = self.int_sum.wrapping_add(v);
                }
                ColView::Dt(d, _) => {
                    self.sum += d[i] as f64;
                    self.int_sum = self.int_sum.wrapping_add(d[i]);
                }
                ColView::Str(..) | ColView::Cat(..) => {}
            },
            AggKind::Min | AggKind::Max => {
                let candidate = match view {
                    ColView::I64(d, _) => Extreme::I(d[i]),
                    ColView::F64(d, _) => Extreme::F(d[i]),
                    ColView::Bool(d, _) => Extreme::B(d.get(i)),
                    ColView::Dt(d, _) => Extreme::D(d[i]),
                    ColView::Str(d, _) => {
                        // Compare before copying: the byte copy only happens
                        // when the extreme actually improves.
                        let s = d.get(i);
                        if self.str_extreme_better(agg, s) {
                            let slot =
                                if agg == AggKind::Min { &mut self.min } else { &mut self.max };
                            *slot = Extreme::S(Box::from(s));
                        }
                        return;
                    }
                    ColView::Cat(cat, _) => {
                        let s = cat.dict.get(cat.codes[i] as usize);
                        if self.str_extreme_better(agg, s) {
                            let slot =
                                if agg == AggKind::Min { &mut self.min } else { &mut self.max };
                            *slot = Extreme::S(Box::from(s));
                        }
                        return;
                    }
                };
                if agg == AggKind::Min {
                    if matches!(self.min, Extreme::None) || candidate.cmp(&self.min).is_lt() {
                        self.min = candidate;
                    }
                } else if matches!(self.max, Extreme::None) || candidate.cmp(&self.max).is_gt() {
                    self.max = candidate;
                }
            }
            AggKind::NUnique => match view {
                ColView::I64(d, _) => self.distinct.insert_i64(d[i]),
                ColView::F64(d, _) => self.distinct.insert_f64(d[i]),
                ColView::Bool(d, _) => self.distinct.insert_bool(d.get(i)),
                ColView::Dt(d, _) => self.distinct.insert_dt(d[i]),
                ColView::Str(d, _) => self.distinct.insert_str(d.get(i)),
                ColView::Cat(c, _) => {
                    self.distinct.insert_canon(c.dict.get(c.codes[i] as usize).to_string())
                }
            },
            AggKind::Count => {}
        }
    }

    /// Would string value `s` replace the current min/max extreme?
    fn str_extreme_better(&self, agg: AggKind, s: &str) -> bool {
        let cur = if agg == AggKind::Min { &self.min } else { &self.max };
        match cur {
            Extreme::None => true,
            Extreme::S(c) => {
                if agg == AggKind::Min {
                    s < c.as_ref()
                } else {
                    s > c.as_ref()
                }
            }
            other => {
                // Mixed-dtype stream (degenerate): fall back to scalar order.
                let cand = Extreme::S(Box::from(s));
                if agg == AggKind::Min {
                    cand.cmp(other).is_lt()
                } else {
                    cand.cmp(other).is_gt()
                }
            }
        }
    }

    /// Merge another partial state into this one.
    pub fn merge(&mut self, other: &AggState) {
        self.sum += other.sum;
        self.int_sum = self.int_sum.wrapping_add(other.int_sum);
        self.count += other.count;
        if !matches!(other.min, Extreme::None)
            && (matches!(self.min, Extreme::None) || other.min.cmp(&self.min).is_lt())
        {
            self.min = other.min.clone();
        }
        if !matches!(other.max, Extreme::None)
            && (matches!(self.max, Extreme::None) || other.max.cmp(&self.max).is_gt())
        {
            self.max = other.max.clone();
        }
        self.distinct.merge(&other.distinct);
    }

    fn finish(&self, agg: AggKind) -> Scalar {
        match agg {
            AggKind::Sum => {
                if self.count == 0 {
                    Scalar::Null
                } else if self.value_is_int {
                    Scalar::Int(self.int_sum)
                } else {
                    Scalar::Float(self.sum)
                }
            }
            AggKind::Mean => {
                if self.count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(self.sum / self.count as f64)
                }
            }
            AggKind::Count => Scalar::Int(self.count as i64),
            AggKind::Min => self.min.to_scalar(),
            AggKind::Max => self.max.to_scalar(),
            AggKind::NUnique => Scalar::Int(self.distinct.len() as i64),
        }
    }

    /// Approximate heap bytes held by this state (for the memory budget).
    pub fn heap_size(&self) -> usize {
        let extreme = |e: &Extreme| match e {
            Extreme::S(s) => s.len() + 16,
            _ => 0,
        };
        std::mem::size_of::<AggState>()
            + extreme(&self.min)
            + extreme(&self.max)
            + self.distinct.heap_size()
    }
}

// ---------------------------------------------------------------------------
// Typed key storage
// ---------------------------------------------------------------------------

/// One key column's stored group values. `nulls[g]` is true when group `g`
/// has a null in this key position.
#[derive(Debug)]
enum KeyCol {
    I64 {
        dtype: DType, // Int64 or Datetime
        data: Vec<i64>,
        nulls: Vec<bool>,
    },
    F64 {
        data: Vec<f64>,
        nulls: Vec<bool>,
    },
    Bool {
        data: Vec<bool>,
        nulls: Vec<bool>,
    },
    Str {
        data: Vec<Box<str>>,
        nulls: Vec<bool>,
    },
    /// Fallback after a mid-stream dtype change: canonical display strings.
    Canon {
        data: Vec<String>,
        nulls: Vec<bool>,
    },
}

impl KeyCol {
    fn for_column(col: &Column) -> KeyCol {
        match col.dtype() {
            DType::Int64 | DType::Datetime => KeyCol::I64 {
                dtype: col.dtype(),
                data: Vec::new(),
                nulls: Vec::new(),
            },
            DType::Float64 => KeyCol::F64 {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            DType::Bool => KeyCol::Bool {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            DType::Utf8 | DType::Categorical => KeyCol::Str {
                data: Vec::new(),
                nulls: Vec::new(),
            },
        }
    }

    /// Does this store accept values of `col` without canonizing?
    fn accepts(&self, col: &Column) -> bool {
        matches!(
            (self, col.dtype()),
            (KeyCol::I64 { dtype, .. }, d) if *dtype == d
        ) || matches!(
            (self, col.dtype()),
            (KeyCol::F64 { .. }, DType::Float64)
                | (KeyCol::Bool { .. }, DType::Bool)
                | (KeyCol::Str { .. }, DType::Utf8)
                | (KeyCol::Str { .. }, DType::Categorical)
                | (KeyCol::Canon { .. }, _)
        )
    }

    /// Downgrade stored values to canonical display strings.
    fn canonize(&mut self) {
        let (data, nulls): (Vec<String>, Vec<bool>) = match self {
            KeyCol::I64 { dtype, data, nulls } => (
                data.iter()
                    .zip(nulls.iter())
                    .map(|(&v, &n)| {
                        if n {
                            Scalar::Null.to_string()
                        } else if *dtype == DType::Datetime {
                            Scalar::Datetime(v).to_string()
                        } else {
                            Scalar::Int(v).to_string()
                        }
                    })
                    .collect(),
                std::mem::take(nulls),
            ),
            KeyCol::F64 { data, nulls } => (
                data.iter()
                    .zip(nulls.iter())
                    .map(|(&v, &n)| {
                        if n {
                            Scalar::Null.to_string()
                        } else {
                            Scalar::Float(v).to_string()
                        }
                    })
                    .collect(),
                std::mem::take(nulls),
            ),
            KeyCol::Bool { data, nulls } => (
                data.iter()
                    .zip(nulls.iter())
                    .map(|(&v, &n)| {
                        if n {
                            Scalar::Null.to_string()
                        } else {
                            Scalar::Bool(v).to_string()
                        }
                    })
                    .collect(),
                std::mem::take(nulls),
            ),
            KeyCol::Str { data, nulls } => (
                data.iter()
                    .zip(nulls.iter())
                    .map(|(v, &n)| {
                        if n {
                            Scalar::Null.to_string()
                        } else {
                            v.to_string()
                        }
                    })
                    .collect(),
                std::mem::take(nulls),
            ),
            KeyCol::Canon { .. } => return,
        };
        *self = KeyCol::Canon { data, nulls };
    }

    /// Is stored group `g` equal to row `i` of `col`? Equality follows the
    /// old canonical-string semantics: nulls equal nulls, values equal when
    /// their rendered scalars would match.
    #[inline]
    fn matches(&self, g: usize, col: &Column, i: usize) -> bool {
        let row_null = col.is_null_at(i);
        match self {
            KeyCol::I64 { dtype, data, nulls } => {
                if nulls[g] != row_null {
                    return false;
                }
                if row_null {
                    return true;
                }
                match (col, dtype) {
                    (Column::Int64(d, _), DType::Int64) => d[i] == data[g],
                    (Column::Datetime(d, _), DType::Datetime) => d[i] == data[g],
                    _ => false,
                }
            }
            KeyCol::F64 { data, nulls } => {
                if nulls[g] != row_null {
                    return false;
                }
                if row_null {
                    return true;
                }
                match col {
                    // Bit equality matches display-string equality
                    // (-0.0 and 0.0 render differently and hash differently).
                    Column::Float64(d, _) => d[i].to_bits() == data[g].to_bits(),
                    _ => false,
                }
            }
            KeyCol::Bool { data, nulls } => {
                if nulls[g] != row_null {
                    return false;
                }
                if row_null {
                    return true;
                }
                match col {
                    Column::Bool(d, _) => d.get(i) == data[g],
                    _ => false,
                }
            }
            KeyCol::Str { data, nulls } => {
                // Rendered equality: a null key renders as "NaN", which the
                // canonical-string semantics equate with a literal "NaN".
                let stored: &str = if nulls[g] { "NaN" } else { &data[g] };
                let row: &str = if row_null {
                    "NaN"
                } else {
                    match col {
                        Column::Utf8(d, _) => d.get(i),
                        Column::Categorical(c, _) | Column::Dict(c, _) => {
                            c.dict.get(c.codes[i] as usize)
                        }
                        _ => return false,
                    }
                };
                stored == row
            }
            // Canonical stores compare by rendering alone (nulls render
            // "NaN" and are stored that way).
            KeyCol::Canon { data, .. } => col.get(i).to_string() == data[g],
        }
    }

    /// Append row `i` of `col` as a new group. Caller has verified
    /// `accepts(col)`.
    fn push_row(&mut self, col: &Column, i: usize) {
        let row_null = col.is_null_at(i);
        match self {
            KeyCol::I64 { data, nulls, .. } => {
                let v = match col {
                    Column::Int64(d, _) | Column::Datetime(d, _) => d[i],
                    _ => 0,
                };
                data.push(if row_null { 0 } else { v });
                nulls.push(row_null);
            }
            KeyCol::F64 { data, nulls } => {
                let v = match col {
                    Column::Float64(d, _) => d[i],
                    _ => 0.0,
                };
                data.push(if row_null { 0.0 } else { v });
                nulls.push(row_null);
            }
            KeyCol::Bool { data, nulls } => {
                let v = match col {
                    Column::Bool(d, _) => d.get(i),
                    _ => false,
                };
                data.push(!row_null && v);
                nulls.push(row_null);
            }
            KeyCol::Str { data, nulls } => {
                let v: &str = if row_null {
                    ""
                } else {
                    match col {
                        Column::Utf8(d, _) => d.get(i),
                        Column::Categorical(c, _) | Column::Dict(c, _) => {
                            c.dict.get(c.codes[i] as usize)
                        }
                        _ => "",
                    }
                };
                data.push(Box::from(v));
                nulls.push(row_null);
            }
            KeyCol::Canon { data, nulls } => {
                data.push(if row_null {
                    Scalar::Null.to_string()
                } else {
                    col.get(i).to_string()
                });
                nulls.push(row_null);
            }
        }
    }

    /// Is stored group `g` here equal to stored group `h` in `other`
    /// (accumulator merge path)? Equality is canonical-rendering equality,
    /// evaluated typed where the representations agree.
    fn matches_store(&self, g: usize, other: &KeyCol, h: usize) -> bool {
        match (self, other) {
            (
                KeyCol::I64 { dtype: d1, data: a, nulls: na },
                KeyCol::I64 { dtype: d2, data: b, nulls: nb },
            ) => {
                d1 == d2
                    && na[g] == nb[h]
                    && (na[g] || a[g] == b[h])
            }
            (
                KeyCol::F64 { data: a, nulls: na },
                KeyCol::F64 { data: b, nulls: nb },
            ) => na[g] == nb[h] && (na[g] || a[g].to_bits() == b[h].to_bits()),
            (
                KeyCol::Bool { data: a, nulls: na },
                KeyCol::Bool { data: b, nulls: nb },
            ) => na[g] == nb[h] && (na[g] || a[g] == b[h]),
            // Strings, canonical stores, and mixed representations all
            // compare by canonical rendering (nulls render "NaN").
            _ => self.rendered(g) == other.rendered(h),
        }
    }

    /// Group `g`'s canonical rendering (what the seed `KeyWrap::canon`
    /// produced for this cell; nulls render "NaN").
    fn rendered(&self, g: usize) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        if self.is_null(g) {
            return Cow::Borrowed("NaN");
        }
        match self {
            KeyCol::Str { data, .. } => Cow::Borrowed(&data[g]),
            KeyCol::Canon { data, .. } => Cow::Borrowed(&data[g]),
            other => Cow::Owned(other.scalar(g).to_string()),
        }
    }

    /// This group's contribution to the canonical row hash: must mix the
    /// same value [`mix_key_hashes`] feeds for an identical incoming cell.
    fn hash_value(&self, g: usize) -> u64 {
        match self {
            KeyCol::I64 { data, nulls, .. } => {
                if nulls[g] { u64::MAX } else { data[g] as u64 }
            }
            KeyCol::F64 { data, nulls } => {
                if nulls[g] { u64::MAX } else { data[g].to_bits() }
            }
            KeyCol::Bool { data, nulls } => {
                if nulls[g] { u64::MAX } else { data[g] as u64 }
            }
            KeyCol::Str { data, nulls } => {
                if nulls[g] { fnv1a(b"NaN") } else { fnv1a(data[g].as_bytes()) }
            }
            // Canonical nulls are stored rendered ("NaN") already.
            KeyCol::Canon { data, .. } => fnv1a(data[g].as_bytes()),
        }
    }

    /// Append stored group `h` of `other` as a new group of this store.
    fn push_from(&mut self, other: &KeyCol, h: usize) {
        match (&mut *self, other) {
            (KeyCol::I64 { data, nulls, .. }, KeyCol::I64 { data: d2, nulls: n2, .. }) => {
                data.push(d2[h]);
                nulls.push(n2[h]);
            }
            (KeyCol::F64 { data, nulls }, KeyCol::F64 { data: d2, nulls: n2 }) => {
                data.push(d2[h]);
                nulls.push(n2[h]);
            }
            (KeyCol::Bool { data, nulls }, KeyCol::Bool { data: d2, nulls: n2 }) => {
                data.push(d2[h]);
                nulls.push(n2[h]);
            }
            (KeyCol::Str { data, nulls }, KeyCol::Str { data: d2, nulls: n2 }) => {
                data.push(d2[h].clone());
                nulls.push(n2[h]);
            }
            _ => {
                self.canonize();
                if let KeyCol::Canon { data, nulls } = self {
                    data.push(if other.is_null(h) {
                        Scalar::Null.to_string()
                    } else {
                        other.scalar(h).to_string()
                    });
                    nulls.push(other.is_null(h));
                }
            }
        }
    }

    fn is_null(&self, g: usize) -> bool {
        match self {
            KeyCol::I64 { nulls, .. }
            | KeyCol::F64 { nulls, .. }
            | KeyCol::Bool { nulls, .. }
            | KeyCol::Str { nulls, .. }
            | KeyCol::Canon { nulls, .. } => nulls[g],
        }
    }

    /// An empty store with the same representation (and key dtype).
    fn empty_like(&self) -> KeyCol {
        match self {
            KeyCol::I64 { dtype, .. } => KeyCol::I64 {
                dtype: *dtype,
                data: Vec::new(),
                nulls: Vec::new(),
            },
            KeyCol::F64 { .. } => KeyCol::F64 {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            KeyCol::Bool { .. } => KeyCol::Bool {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            KeyCol::Str { .. } => KeyCol::Str {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            KeyCol::Canon { .. } => KeyCol::Canon {
                data: Vec::new(),
                nulls: Vec::new(),
            },
        }
    }

    /// Same stored representation (variant and, for ints, dtype)?
    fn same_repr(&self, other: &KeyCol) -> bool {
        match (self, other) {
            (KeyCol::I64 { dtype: a, .. }, KeyCol::I64 { dtype: b, .. }) => a == b,
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }

    /// Stored group `g` as a scalar (finish / merge paths only).
    fn scalar(&self, g: usize) -> Scalar {
        if self.is_null(g) {
            return Scalar::Null;
        }
        match self {
            KeyCol::I64 { dtype, data, .. } => {
                if *dtype == DType::Datetime {
                    Scalar::Datetime(data[g])
                } else {
                    Scalar::Int(data[g])
                }
            }
            KeyCol::F64 { data, .. } => Scalar::Float(data[g]),
            KeyCol::Bool { data, .. } => Scalar::Bool(data[g]),
            KeyCol::Str { data, .. } => Scalar::Str(data[g].to_string()),
            KeyCol::Canon { data, .. } => Scalar::Str(data[g].clone()),
        }
    }

    /// Output dtype for the result frame (the old code inferred this from
    /// the first non-null scalar, defaulting to Utf8).
    fn out_dtype(&self) -> Option<DType> {
        let any_non_null = match self {
            KeyCol::I64 { nulls, .. }
            | KeyCol::F64 { nulls, .. }
            | KeyCol::Bool { nulls, .. }
            | KeyCol::Str { nulls, .. }
            | KeyCol::Canon { nulls, .. } => nulls.iter().any(|n| !n),
        };
        if !any_non_null {
            return None;
        }
        Some(match self {
            KeyCol::I64 { dtype, .. } => *dtype,
            KeyCol::F64 { .. } => DType::Float64,
            KeyCol::Bool { .. } => DType::Bool,
            KeyCol::Str { .. } | KeyCol::Canon { .. } => DType::Utf8,
        })
    }

    fn heap_size(&self) -> usize {
        match self {
            KeyCol::I64 { data, nulls, .. } => data.capacity() * 8 + nulls.capacity(),
            KeyCol::F64 { data, nulls } => data.capacity() * 8 + nulls.capacity(),
            KeyCol::Bool { data, nulls } => data.capacity() + nulls.capacity(),
            KeyCol::Str { data, nulls } => {
                data.capacity() * 16
                    + data.iter().map(|s| s.len()).sum::<usize>()
                    + nulls.capacity()
            }
            KeyCol::Canon { data, nulls } => {
                data.capacity() * 24
                    + data.iter().map(String::capacity).sum::<usize>()
                    + nulls.capacity()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The accumulator
// ---------------------------------------------------------------------------

/// Mix one key column's per-row hash contribution for rows
/// `offset .. offset + hashes.len()` into `hashes` (slot `j` accumulates
/// row `offset + j`), matching the canonical-rendering semantics: typed
/// columns use [`Column::hash_into`]'s scheme, string-class columns hash
/// nulls as the rendered "NaN" (so a null key and a literal `"NaN"`
/// string key land in the same bucket, as the old canonical-string keying
/// did), and canonical stores hash the rendered scalar. The range form is
/// what lets parallel workers hash only their own morsel.
fn mix_key_hashes(store: &KeyCol, col: &Column, offset: usize, hashes: &mut [u64]) {
    let len = hashes.len();
    let mut mix = |j: usize, v: u64| {
        let h = &mut hashes[j];
        *h = (*h ^ v).wrapping_mul(HASH_PRIME);
    };
    match store {
        KeyCol::Canon { .. } => {
            for j in 0..len {
                mix(j, fnv1a(col.get(offset + j).to_string().as_bytes()));
            }
        }
        KeyCol::Str { .. } => {
            let nan = fnv1a(b"NaN");
            match col {
                Column::Utf8(d, _) => {
                    for j in 0..len {
                        let i = offset + j;
                        let v = if col.is_null_at(i) { nan } else { fnv1a(d.bytes_at(i)) };
                        mix(j, v);
                    }
                }
                Column::Categorical(c, _) | Column::Dict(c, _) => {
                    let dict_hashes: Vec<u64> =
                        (0..c.dict.len()).map(|d| fnv1a(c.dict.bytes_at(d))).collect();
                    for (j, &code) in c.codes[offset..offset + len].iter().enumerate() {
                        let i = offset + j;
                        let v = if col.is_null_at(i) {
                            nan
                        } else {
                            dict_hashes[code as usize]
                        };
                        mix(j, v);
                    }
                }
                // `accepts` guarantees Str stores only see string columns.
                other => other.hash_range_into(offset, hashes),
            }
        }
        _ => col.hash_range_into(offset, hashes),
    }
}

/// A stored group's full key hash under `cols`' current representation.
fn group_hash(cols: &[KeyCol], g: usize) -> u64 {
    let mut h = 0u64;
    for c in cols {
        h = (h ^ c.hash_value(g)).wrapping_mul(HASH_PRIME);
    }
    h
}

/// A stored group's key hash in `theirs`, computed under `mine`'s
/// representation (accumulator merge: the sides may disagree on whether a
/// column has been canonized).
fn cross_group_hash(mine: &[KeyCol], theirs: &[KeyCol], g: usize) -> u64 {
    let mut h = 0u64;
    for (m, t) in mine.iter().zip(theirs) {
        let v = match m {
            KeyCol::Canon { .. } => fnv1a(t.rendered(g).as_bytes()),
            _ => t.hash_value(g),
        };
        h = (h ^ v).wrapping_mul(HASH_PRIME);
    }
    h
}

/// Streaming group-by accumulator: feed chunks, then `finish`.
///
/// Representation: `table` maps a 64-bit row hash to the group indexes
/// sharing it; `key_cols` stores each group's key values in typed columns
/// (one slot per group, in first-seen order); `states[g]` is group `g`'s
/// running aggregate. The same representation serves `update` (streaming
/// chunks), `merge` (parallel partials), and `finish`.
#[derive(Debug)]
pub struct GroupByAccumulator {
    spec: GroupBySpec,
    table: HashTable,
    key_cols: Vec<KeyCol>,
    states: Vec<AggState>,
    value_is_int: bool,
    /// Reused per-chunk row-hash buffer: the fused-chain path feeds one
    /// accumulator morsel after morsel, so the scratch is allocated once
    /// and grown to the largest morsel instead of once per update.
    hash_scratch: Vec<u64>,
}

impl GroupByAccumulator {
    /// Start an accumulation for `spec`.
    pub fn new(spec: GroupBySpec) -> GroupByAccumulator {
        GroupByAccumulator {
            spec,
            table: HashTable::default(),
            key_cols: Vec::new(),
            states: Vec::new(),
            value_is_int: true,
            hash_scratch: Vec::new(),
        }
    }

    /// The spec this accumulator computes.
    pub fn spec(&self) -> &GroupBySpec {
        &self.spec
    }

    /// Number of groups discovered so far.
    fn num_groups(&self) -> usize {
        self.states.len()
    }

    /// Consume one chunk of input rows.
    pub fn update(&mut self, chunk: &DataFrame) -> Result<()> {
        self.update_range(chunk, 0, chunk.num_rows())
    }

    /// Consume rows `offset .. offset + len` of `chunk` without slicing
    /// (no column copies). This is the morsel entry point: parallel
    /// workers feed disjoint row ranges of one shared frame into
    /// worker-local accumulators.
    pub fn update_range(&mut self, chunk: &DataFrame, offset: usize, len: usize) -> Result<()> {
        debug_assert!(offset + len <= chunk.num_rows());
        let key_cols: Vec<&Column> = self
            .spec
            .keys
            .iter()
            .map(|k| chunk.column(k).map(Series::column))
            .collect::<Result<Vec<_>>>()?;
        let value_col = chunk.column(&self.spec.value)?.column();
        self.update_inner(&key_cols, value_col, offset, len, None)
    }

    /// Consume rows of already-resolved key/value columns, optionally
    /// restricted to the set bits of a selection bitmap over the columns'
    /// row domain. This is the fused-chain entry point: a chain that ends
    /// in a group-by feeds the accumulator straight from its selection
    /// view, so the surviving rows are never gathered into an
    /// intermediate frame. `key_cols` must line up with the spec's key
    /// names (caller resolves); all columns share one length.
    pub fn update_cols(
        &mut self,
        key_cols: &[&Column],
        value_col: &Column,
        sel: Option<&Bitmap>,
    ) -> Result<()> {
        self.update_inner(key_cols, value_col, 0, value_col.len(), sel)
    }

    /// Shared update loop: hash keys for the full range, then upsert
    /// every row (or only the selected rows) into the group table.
    fn update_inner(
        &mut self,
        key_cols: &[&Column],
        value_col: &Column,
        offset: usize,
        len: usize,
        sel: Option<&Bitmap>,
    ) -> Result<()> {
        debug_assert_eq!(key_cols.len(), self.spec.keys.len());
        debug_assert!(sel.is_none_or(|s| s.len() == len));
        // Run-length columns fall back to plain rows here (dictionary
        // columns flow through the Cat arms natively).
        let key_storage: Vec<std::borrow::Cow<'_, Column>> =
            key_cols.iter().map(|c| c.rle_decoded()).collect();
        let key_cols_vec: Vec<&Column> = key_storage.iter().map(|c| c.as_ref()).collect();
        let key_cols: &[&Column] = &key_cols_vec;
        let value_storage = value_col.rle_decoded();
        let value_col: &Column = value_storage.as_ref();
        if value_col.dtype() != DType::Int64 && value_col.dtype() != DType::Bool {
            self.value_is_int = false;
        }
        if self.key_cols.is_empty() {
            self.key_cols = key_cols.iter().map(|c| KeyCol::for_column(c)).collect();
        }
        // A mid-stream dtype change downgrades that key column to
        // canonical strings (degenerate inputs only); existing groups are
        // re-hashed and canonically-equal ones merged, preserving the old
        // rendered-string grouping semantics.
        let mut canonized = false;
        for (store, col) in self.key_cols.iter_mut().zip(key_cols) {
            if !store.accepts(col) {
                store.canonize();
                canonized = true;
            }
        }
        if canonized {
            self.rebuild_table();
        }
        let mut row_hashes = std::mem::take(&mut self.hash_scratch);
        row_hashes.clear();
        row_hashes.resize(len, 0);
        for (store, col) in self.key_cols.iter().zip(key_cols) {
            mix_key_hashes(store, col, offset, &mut row_hashes);
        }
        let agg = self.spec.agg;
        let value_is_int = self.value_is_int;
        let view = ColView::new(value_col);
        match sel {
            None => {
                for (j, &h) in row_hashes.iter().enumerate() {
                    self.upsert_row(key_cols, &view, offset + j, h, agg, value_is_int);
                }
            }
            Some(sel) => {
                // Hashes were mixed for the whole range (word-at-a-time,
                // cheap); only the selected rows touch the table.
                sel.for_each_set(|j| {
                    self.upsert_row(key_cols, &view, offset + j, row_hashes[j], agg, value_is_int);
                });
            }
        }
        self.hash_scratch = row_hashes;
        Ok(())
    }

    /// Find-or-create row `i`'s group and fold its value in.
    #[inline]
    fn upsert_row(
        &mut self,
        key_cols: &[&Column],
        view: &ColView,
        i: usize,
        h: u64,
        agg: AggKind,
        value_is_int: bool,
    ) {
        let gid = {
            let candidates = self.table.entry(h).or_default();
            let found = candidates.iter().copied().find(|&g| {
                self.key_cols
                    .iter()
                    .zip(key_cols)
                    .all(|(store, col)| store.matches(g as usize, col, i))
            });
            match found {
                Some(g) => g as usize,
                None => {
                    let g = self.states.len() as u32;
                    candidates.push(g);
                    for (store, col) in self.key_cols.iter_mut().zip(key_cols) {
                        store.push_row(col, i);
                    }
                    self.states.push(AggState::new(value_is_int));
                    g as usize
                }
            }
        };
        if !view.is_null(i) {
            self.states[gid].update_at(view, i, agg);
        }
    }

    /// Merge a sibling accumulator (same spec) — used by the parallel
    /// (Modin-like) backend to combine per-partition states, and it reuses
    /// the same hashed representation: no keys are re-rendered on the
    /// common path.
    pub fn merge(&mut self, other: &GroupByAccumulator) {
        self.value_is_int = self.value_is_int && other.value_is_int;
        if self.key_cols.is_empty() && !other.key_cols.is_empty() {
            // We never saw a chunk: adopt the other side's key layout.
            self.key_cols = other.key_cols.iter().map(KeyCol::empty_like).collect();
        }
        // Unify representations: if the sides disagree on a column (one
        // canonized, or different key dtypes), downgrade ours to canonical
        // strings and re-bucket before merging (degenerate inputs only).
        let mut canonized = false;
        for (mine, theirs) in self.key_cols.iter_mut().zip(&other.key_cols) {
            if !mine.same_repr(theirs) && !matches!(mine, KeyCol::Canon { .. }) {
                mine.canonize();
                canonized = true;
            }
        }
        if canonized {
            self.rebuild_table();
        }
        for h in 0..other.num_groups() {
            let hash = cross_group_hash(&self.key_cols, &other.key_cols, h);
            let found = self.table.get(&hash).and_then(|candidates| {
                candidates.iter().copied().find(|&g| {
                    self.key_cols
                        .iter()
                        .zip(&other.key_cols)
                        .all(|(mine, theirs)| mine.matches_store(g as usize, theirs, h))
                })
            });
            match found {
                Some(g) => self.states[g as usize].merge(&other.states[h]),
                None => {
                    let g = self.states.len() as u32;
                    self.table.entry(hash).or_default().push(g);
                    for (mine, theirs) in self.key_cols.iter_mut().zip(&other.key_cols) {
                        mine.push_from(theirs, h);
                    }
                    self.states.push(other.states[h].clone());
                }
            }
        }
    }

    /// Re-hash every stored group and re-bucket the table, folding groups
    /// whose keys now render identically (after a key column is canonized
    /// mid-stream). Preserves first-seen order of the surviving groups.
    fn rebuild_table(&mut self) {
        let old_keys = std::mem::take(&mut self.key_cols);
        let old_states = std::mem::take(&mut self.states);
        self.key_cols = old_keys.iter().map(KeyCol::empty_like).collect();
        self.table.clear();
        for (g, old_state) in old_states.iter().enumerate() {
            let h = group_hash(&old_keys, g);
            let found = self.table.get(&h).and_then(|candidates| {
                candidates.iter().copied().find(|&c| {
                    self.key_cols
                        .iter()
                        .zip(&old_keys)
                        .all(|(mine, theirs)| mine.matches_store(c as usize, theirs, g))
                })
            });
            match found {
                Some(c) => self.states[c as usize].merge(old_state),
                None => {
                    let gid = self.states.len() as u32;
                    self.table.entry(h).or_default().push(gid);
                    for (mine, theirs) in self.key_cols.iter_mut().zip(&old_keys) {
                        mine.push_from(theirs, g);
                    }
                    self.states.push(old_state.clone());
                }
            }
        }
    }

    /// Approximate heap bytes (memory-budget accounting for streaming
    /// aggs). Accounts for the actual typed key bytes — including string
    /// key payloads — rather than a flat per-group estimate.
    pub fn heap_size(&self) -> usize {
        let states: usize = self.states.iter().map(AggState::heap_size).sum();
        let keys: usize = self.key_cols.iter().map(KeyCol::heap_size).sum();
        // Hash table: each occupied slot holds a key, a Vec header and
        // (usually) one u32 entry.
        let table = self.table.len() * (8 + 24) + self.num_groups() * 4;
        states + keys + table + self.hash_scratch.capacity() * 8
    }

    /// Produce the result frame: one row per group, sorted by key (pandas
    /// `groupby` sorts group keys by default; like the old accumulator we
    /// order by the rendered key string, computed once per group).
    pub fn finish(self) -> Result<DataFrame> {
        let n_groups = self.num_groups();
        let n_keys = self.spec.keys.len();
        let canons: Vec<String> = (0..n_groups)
            .map(|g| {
                self.key_cols
                    .iter()
                    .map(|c| c.scalar(g).to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect();
        let mut order: Vec<usize> = (0..n_groups).collect();
        order.sort_by(|&a, &b| canons[a].cmp(&canons[b]));

        let mut key_builders: Vec<ColumnBuilder> = Vec::with_capacity(n_keys);
        for k in 0..n_keys {
            let dtype = self
                .key_cols
                .get(k)
                .and_then(KeyCol::out_dtype)
                .unwrap_or(DType::Utf8);
            key_builders.push(ColumnBuilder::new(dtype));
        }
        let mut values: Vec<Scalar> = Vec::with_capacity(n_groups);
        for &g in &order {
            for (k, b) in key_builders.iter_mut().enumerate() {
                b.push_scalar(&self.key_cols[k].scalar(g))?;
            }
            values.push(self.states[g].finish(self.spec.agg));
        }
        let out_dtype = values
            .iter()
            .find_map(Scalar::dtype)
            .unwrap_or(DType::Float64);
        let mut value_builder = ColumnBuilder::new(out_dtype);
        for v in &values {
            value_builder.push_scalar(v)?;
        }
        let mut series = Vec::with_capacity(n_keys + 1);
        for (k, b) in key_builders.into_iter().enumerate() {
            series.push(Series::new(self.spec.keys[k].clone(), b.finish()));
        }
        series.push(Series::new(self.spec.value.clone(), value_builder.finish()));
        DataFrame::new(series)
    }
}

// ---------------------------------------------------------------------------
// Dense code-keyed fast path
// ---------------------------------------------------------------------------

/// Largest dictionary the dense path will allocate per-code slots for.
const DENSE_MAX_DICT: usize = 65_536;

/// The key column's dictionary view when the dense code-keyed fast path
/// applies: a single dictionary-backed key with no nulls, a small
/// dictionary, and unique entries. Uniqueness holds for every in-tree
/// construction path but is verified here (one cheap pass over the
/// dictionary, not the rows) because `Categorical`'s fields are public.
fn dense_key(col: &Column) -> Option<&crate::column::Categorical> {
    let c = match col {
        Column::Categorical(c, None) | Column::Dict(c, None) => c,
        _ => return None,
    };
    if c.dict.len() > DENSE_MAX_DICT {
        return None;
    }
    let mut seen = HashSet::with_capacity(c.dict.len());
    for e in 0..c.dict.len() {
        if !seen.insert(c.dict.bytes_at(e)) {
            return None;
        }
    }
    Some(c)
}

/// Per-code aggregate slots: group identity is the u32 dictionary code, so
/// the per-row step is an array index — no hashing, no key comparison, no
/// key-byte copies. Reuses [`AggState`] so every aggregate's arithmetic
/// (and therefore its output) is identical to the hash path's.
struct DenseGroups {
    seen: Vec<bool>,
    states: Vec<AggState>,
}

impl DenseGroups {
    fn new(dict_len: usize, value_is_int: bool) -> DenseGroups {
        DenseGroups {
            seen: vec![false; dict_len],
            states: vec![AggState::new(value_is_int); dict_len],
        }
    }

    /// Fold rows `offset .. offset + len` into the per-code slots. Like
    /// the hash path, a row claims its group even when its value is null.
    fn update_range(
        &mut self,
        key: &crate::column::Categorical,
        view: &ColView<'_>,
        offset: usize,
        len: usize,
        agg: AggKind,
    ) {
        for (j, &code) in key.codes[offset..offset + len].iter().enumerate() {
            let g = code as usize;
            self.seen[g] = true;
            let i = offset + j;
            if !view.is_null(i) {
                self.states[g].update_at(view, i, agg);
            }
        }
    }

    /// Merge a sibling's slots (parallel partials; code spaces coincide
    /// because both sides index one shared dictionary).
    fn merge(&mut self, other: &DenseGroups) {
        for (g, ot) in other.states.iter().enumerate() {
            if !other.seen[g] {
                continue;
            }
            if self.seen[g] {
                self.states[g].merge(ot);
            } else {
                self.seen[g] = true;
                self.states[g] = ot.clone();
            }
        }
    }
}

/// Render dense slots into the result frame through the hash path's own
/// `finish` (same key-sort, same builders, same output dtypes).
fn finish_dense(
    spec: GroupBySpec,
    key: &crate::column::Categorical,
    dense: DenseGroups,
    value_is_int: bool,
) -> Result<DataFrame> {
    let mut data: Vec<Box<str>> = Vec::new();
    let mut states: Vec<AggState> = Vec::new();
    for (code, st) in dense.states.iter().enumerate() {
        if dense.seen[code] {
            data.push(Box::from(key.dict.get(code)));
            states.push(st.clone());
        }
    }
    let nulls = vec![false; data.len()];
    let acc = GroupByAccumulator {
        spec,
        table: HashTable::default(),
        key_cols: vec![KeyCol::Str { data, nulls }],
        states,
        value_is_int,
        hash_scratch: Vec::new(),
    };
    acc.finish()
}

/// Run the dense code-keyed group-by when the gate admits
/// `frame`/`spec`; `Ok(None)` routes the caller to the hash path.
fn try_dense_group_by(
    frame: &DataFrame,
    spec: &GroupBySpec,
    pool: Option<&crate::pool::WorkerPool>,
) -> Result<Option<DataFrame>> {
    if !crate::encoding::enabled() || spec.keys.len() != 1 {
        return Ok(None);
    }
    let key_col = frame.column(&spec.keys[0])?.column();
    let Some(key) = dense_key(key_col) else {
        return Ok(None);
    };
    let value_col = frame.column(&spec.value)?.column();
    if matches!(value_col, Column::Rle(_)) {
        return Ok(None);
    }
    let value_is_int =
        value_col.dtype() == DType::Int64 || value_col.dtype() == DType::Bool;
    let rows = frame.num_rows();
    let dense = match pool {
        Some(pool) if pool.is_parallel() && rows >= crate::pool::PAR_MIN_ROWS => {
            let morsels = crate::pool::kernel_morsels(rows, pool.threads());
            let partials: Vec<Result<DenseGroups>> =
                pool.run_workers(morsels.len(), |queue| {
                    let mut dense = DenseGroups::new(key.dict.len(), value_is_int);
                    let view = ColView::new(value_col);
                    while let Some(t) = queue.claim() {
                        let (start, len) = morsels[t];
                        dense.update_range(key, &view, start, len, spec.agg);
                    }
                    Ok(dense)
                })?;
            let mut it = partials.into_iter();
            let mut merged = it.next().expect("at least one worker")?;
            for partial in it {
                merged.merge(&partial?);
            }
            merged
        }
        _ => {
            let mut dense = DenseGroups::new(key.dict.len(), value_is_int);
            let view = ColView::new(value_col);
            dense.update_range(key, &view, 0, rows, spec.agg);
            dense
        }
    };
    finish_dense(spec.clone(), key, dense, value_is_int).map(Some)
}

/// One-shot group-by over a whole frame.
pub fn group_by(frame: &DataFrame, spec: &GroupBySpec) -> Result<DataFrame> {
    if spec.keys.is_empty() {
        return Err(ColumnarError::InvalidArgument(
            "groupby requires at least one key".into(),
        ));
    }
    if let Some(out) = try_dense_group_by(frame, spec, None)? {
        return Ok(out);
    }
    let mut acc = GroupByAccumulator::new(spec.clone());
    acc.update(frame)?;
    acc.finish()
}

/// Morsel-parallel group-by: workers claim row-range morsels off the
/// pool's shared queue, fold them into worker-local
/// [`GroupByAccumulator`]s (no input copies — [`update_range`] reads the
/// shared frame in place), and the partials merge through the existing
/// typed merge path. Falls back to the sequential [`group_by`] below
/// [`PAR_MIN_ROWS`](crate::pool::PAR_MIN_ROWS) or on a single-thread
/// pool; the result is identical either way (the finish step orders
/// groups by rendered key, not by discovery order).
///
/// [`update_range`]: GroupByAccumulator::update_range
pub fn group_by_par(
    frame: &DataFrame,
    spec: &GroupBySpec,
    pool: &crate::pool::WorkerPool,
) -> Result<DataFrame> {
    let rows = frame.num_rows();
    if !pool.is_parallel() || rows < crate::pool::PAR_MIN_ROWS {
        return group_by(frame, spec);
    }
    if spec.keys.is_empty() {
        return Err(ColumnarError::InvalidArgument(
            "groupby requires at least one key".into(),
        ));
    }
    if let Some(out) = try_dense_group_by(frame, spec, Some(pool))? {
        return Ok(out);
    }
    let morsels = crate::pool::kernel_morsels(rows, pool.threads());
    let partials: Vec<Result<GroupByAccumulator>> = pool.run_workers(morsels.len(), |queue| {
        let mut acc = GroupByAccumulator::new(spec.clone());
        while let Some(t) = queue.claim() {
            let (start, len) = morsels[t];
            acc.update_range(frame, start, len)?;
        }
        Ok(acc)
    })?;
    let mut it = partials.into_iter();
    let mut merged = it.next().expect("at least one worker")?;
    for partial in it {
        merged.merge(&partial?);
    }
    merged.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::df;

    fn trips() -> DataFrame {
        df![
            ("day", Column::from_i64(vec![1, 0, 1, 0, 1])),
            (
                "passenger_count",
                Column::from_i64(vec![2, 1, 3, 4, 1])
            ),
            ("fare", Column::from_f64(vec![5.0, 6.0, 7.0, 8.0, 9.0])),
        ]
    }

    fn spec(agg: AggKind) -> GroupBySpec {
        GroupBySpec {
            keys: vec!["day".into()],
            value: "passenger_count".into(),
            agg,
        }
    }

    #[test]
    fn sum_by_key_sorted() {
        let out = group_by(&trips(), &spec(AggKind::Sum)).unwrap();
        assert_eq!(out.num_rows(), 2);
        // keys sorted ascending: day=0 then day=1
        assert_eq!(out.column("day").unwrap().get(0), Scalar::Int(0));
        assert_eq!(out.column("passenger_count").unwrap().get(0), Scalar::Int(5));
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(6));
    }

    #[test]
    fn mean_count_min_max_nunique() {
        let out = group_by(&trips(), &spec(AggKind::Mean)).unwrap();
        assert_eq!(
            out.column("passenger_count").unwrap().get(1),
            Scalar::Float(2.0)
        );
        let out = group_by(&trips(), &spec(AggKind::Count)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(0), Scalar::Int(2));
        let out = group_by(&trips(), &spec(AggKind::Min)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(1));
        let out = group_by(&trips(), &spec(AggKind::Max)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(3));
        let out = group_by(&trips(), &spec(AggKind::NUnique)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(3));
    }

    #[test]
    fn float_values_sum_to_float() {
        let s = GroupBySpec {
            keys: vec!["day".into()],
            value: "fare".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&trips(), &s).unwrap();
        assert_eq!(out.column("fare").unwrap().get(0), Scalar::Float(14.0));
    }

    #[test]
    fn multi_key_groupby() {
        let df = df![
            ("a", Column::from_strings(vec!["x", "x", "y"])),
            ("b", Column::from_i64(vec![1, 1, 2])),
            ("v", Column::from_i64(vec![10, 20, 30])),
        ];
        let s = GroupBySpec {
            keys: vec!["a".into(), "b".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 3);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(30));
    }

    #[test]
    fn streaming_chunks_equal_oneshot() {
        let df = trips();
        let whole = group_by(&df, &spec(AggKind::Mean)).unwrap();
        let mut acc = GroupByAccumulator::new(spec(AggKind::Mean));
        acc.update(&df.slice(0, 2)).unwrap();
        acc.update(&df.slice(2, 3)).unwrap();
        let chunked = acc.finish().unwrap();
        assert_eq!(whole, chunked);
    }

    #[test]
    fn parallel_merge_equal_oneshot() {
        let df = trips();
        let whole = group_by(&df, &spec(AggKind::Sum)).unwrap();
        let mut left = GroupByAccumulator::new(spec(AggKind::Sum));
        left.update(&df.slice(0, 3)).unwrap();
        let mut right = GroupByAccumulator::new(spec(AggKind::Sum));
        right.update(&df.slice(3, 2)).unwrap();
        left.merge(&right);
        assert_eq!(whole, left.finish().unwrap());
    }

    #[test]
    fn nulls_skipped() {
        let df = df![
            ("k", Column::from_i64(vec![1, 1, 1])),
            ("v", Column::from_opt_i64(vec![Some(1), None, Some(3)])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Count,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(2));
    }

    #[test]
    fn empty_keys_rejected() {
        let s = GroupBySpec {
            keys: vec![],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        assert!(group_by(&trips(), &s).is_err());
    }

    #[test]
    fn agg_kind_parse_roundtrip() {
        for agg in [
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::NUnique,
        ] {
            assert_eq!(AggKind::parse(agg.name()), Some(agg));
        }
        assert_eq!(AggKind::parse("median"), None);
    }

    #[test]
    fn null_keys_group_together() {
        let df = df![
            ("k", Column::from_opt_i64(vec![None, Some(1), None, Some(1)])),
            ("v", Column::from_i64(vec![10, 20, 30, 40])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.num_rows(), 2);
        // canonical order: "1" < "NaN"
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(60));
        assert_eq!(out.column("v").unwrap().get(1), Scalar::Int(40));
        assert!(out.column("k").unwrap().column().is_null_at(1));
    }

    #[test]
    fn string_keys_and_aggregates() {
        let df = df![
            ("city", Column::from_strings(vec!["NY", "LA", "NY", "LA", "SF"])),
            ("name", Column::from_strings(vec!["b", "x", "a", "y", "z"])),
        ];
        let s = GroupBySpec {
            keys: vec!["city".into()],
            value: "name".into(),
            agg: AggKind::Min,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.num_rows(), 3);
        // sorted: LA, NY, SF
        assert_eq!(out.column("city").unwrap().get(1), Scalar::Str("NY".into()));
        assert_eq!(out.column("name").unwrap().get(1), Scalar::Str("a".into()));
        let s = GroupBySpec {
            keys: vec!["city".into()],
            value: "name".into(),
            agg: AggKind::NUnique,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.column("name").unwrap().get(1), Scalar::Int(2));
    }

    #[test]
    fn categorical_keys_match_utf8_semantics() {
        let plain = df![
            ("city", Column::from_strings(vec!["NY", "LA", "NY"])),
            ("v", Column::from_i64(vec![1, 2, 3])),
        ];
        let cat = df![
            (
                "city",
                Column::from_strings(vec!["NY", "LA", "NY"])
                    .to_categorical()
                    .unwrap()
            ),
            ("v", Column::from_i64(vec![1, 2, 3])),
        ];
        let s = GroupBySpec {
            keys: vec!["city".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        assert_eq!(group_by(&plain, &s).unwrap(), group_by(&cat, &s).unwrap());
    }

    #[test]
    fn merge_into_empty_accumulator() {
        let df = trips();
        let mut filled = GroupByAccumulator::new(spec(AggKind::Sum));
        filled.update(&df).unwrap();
        let mut empty = GroupByAccumulator::new(spec(AggKind::Sum));
        empty.merge(&filled);
        assert_eq!(
            empty.finish().unwrap(),
            group_by(&df, &spec(AggKind::Sum)).unwrap()
        );
    }

    #[test]
    fn mid_stream_key_dtype_change_groups_canonically() {
        // The old canonical-string keying grouped Int64 1 and Utf8 "1"
        // together when chunks disagreed on the key dtype; the hashed
        // representation must downgrade to canonical strings and fold
        // the existing groups.
        let chunk1 = df![
            ("k", Column::from_i64(vec![1, 2])),
            ("v", Column::from_i64(vec![10, 20])),
        ];
        let chunk2 = df![
            ("k", Column::from_strings(vec!["1", "3"])),
            ("v", Column::from_i64(vec![30, 40])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let mut acc = GroupByAccumulator::new(s.clone());
        acc.update(&chunk1).unwrap();
        acc.update(&chunk2).unwrap();
        let out = acc.finish().unwrap();
        assert_eq!(out.num_rows(), 3, "canonically-equal keys must fold: {out:?}");
        // sorted canonical order: "1" < "2" < "3"
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(40)); // 10 + 30
        // The merge path unifies representations the same way.
        let mut left = GroupByAccumulator::new(s.clone());
        left.update(&chunk1).unwrap();
        let mut right = GroupByAccumulator::new(s);
        right.update(&chunk2).unwrap();
        left.merge(&right);
        assert_eq!(left.finish().unwrap(), out);
    }

    #[test]
    fn null_string_key_groups_with_literal_nan() {
        // A null key renders as "NaN" under canonical-string semantics, so
        // it groups with a literal "NaN" string key (seed behaviour).
        let df = df![
            (
                "k",
                Column::from_opt_strings(vec![None, Some("NaN".into()), Some("x".into())])
            ),
            ("v", Column::from_i64(vec![1, 2, 4])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(3));
    }

    #[test]
    fn heap_size_tracks_string_key_width() {
        let narrow = df![
            ("k", Column::from_strings(vec!["a", "b", "c", "d"])),
            ("v", Column::from_i64(vec![1, 2, 3, 4])),
        ];
        let wide = df![
            (
                "k",
                Column::from_strings(
                    (0..4)
                        .map(|i| format!("an-extremely-wide-composite-key-{i:0>120}"))
                        .collect::<Vec<_>>()
                )
            ),
            ("v", Column::from_i64(vec![1, 2, 3, 4])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let mut a = GroupByAccumulator::new(s.clone());
        a.update(&narrow).unwrap();
        let mut b = GroupByAccumulator::new(s);
        b.update(&wide).unwrap();
        // Same group count, but the wide keys must be charged for their bytes.
        assert!(
            b.heap_size() >= a.heap_size() + 4 * 100,
            "wide string keys under-counted: {} vs {}",
            b.heap_size(),
            a.heap_size()
        );
    }
}
