//! Scalar values, including nulls, plus date/time helpers shared by the
//! datetime kernels.

use crate::dtype::DType;
use crate::HeapSize;
use std::cmp::Ordering;
use std::fmt;

/// One cell of a column, or the result of a full-column reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Missing value (pandas `NaN` / `NaT` / `None`).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Timestamp as seconds since the Unix epoch.
    Datetime(i64),
}

impl Scalar {
    /// The dtype this scalar naturally belongs to (`None` for nulls).
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Scalar::Null => None,
            Scalar::Int(_) => Some(DType::Int64),
            Scalar::Float(_) => Some(DType::Float64),
            Scalar::Bool(_) => Some(DType::Bool),
            Scalar::Str(_) => Some(DType::Utf8),
            Scalar::Datetime(_) => Some(DType::Datetime),
        }
    }

    /// True if this is the null scalar (or a float NaN, matching pandas).
    pub fn is_null(&self) -> bool {
        match self {
            Scalar::Null => true,
            Scalar::Float(f) => f.is_nan(),
            _ => false,
        }
    }

    /// Numeric view as f64 when the scalar is numeric (int, float, bool,
    /// datetime-as-seconds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(*v as f64),
            Scalar::Float(v) => Some(*v),
            Scalar::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Scalar::Datetime(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view when the scalar is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int(v) => Some(*v),
            Scalar::Bool(b) => Some(i64::from(*b)),
            Scalar::Datetime(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total order used by sort kernels: nulls sort last; numerics compare
    /// numerically across int/float; strings lexicographically.
    pub fn cmp_values(&self, other: &Scalar) -> Ordering {
        use Scalar::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Datetime(a), Datetime(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                _ => format!("{self}").cmp(&format!("{other}")),
            },
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Null => f.write_str("NaN"),
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => {
                if v.is_nan() {
                    f.write_str("NaN")
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Scalar::Bool(v) => f.write_str(if *v { "True" } else { "False" }),
            Scalar::Str(v) => f.write_str(v),
            Scalar::Datetime(v) => f.write_str(&format_datetime(*v)),
        }
    }
}

impl HeapSize for Scalar {
    fn heap_size(&self) -> usize {
        match self {
            Scalar::Str(s) => s.capacity(),
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Civil date/time conversions (Howard Hinnant's algorithms), used by the
// datetime column kernels and the CSV date parser.
// ---------------------------------------------------------------------------

/// Days from the Unix epoch for a civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m as u64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Civil date `(year, month, day)` for days since the Unix epoch.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Day of week for an epoch-seconds timestamp, pandas convention:
/// Monday = 0 ... Sunday = 6.
pub fn dayofweek(epoch_secs: i64) -> i64 {
    let days = epoch_secs.div_euclid(86_400);
    // 1970-01-01 was a Thursday (weekday 3 in the Monday=0 convention).
    (days + 3).rem_euclid(7)
}

/// Parse `YYYY-MM-DD` or `YYYY-MM-DD HH:MM:SS` into epoch seconds.
pub fn parse_datetime(text: &str) -> Option<i64> {
    let text = text.trim();
    let (date_part, time_part) = match text.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => match text.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (text, None),
        },
    };
    let mut it = date_part.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut secs = days_from_civil(y, m, d) * 86_400;
    if let Some(t) = time_part {
        let mut parts = t.split(':');
        let h: i64 = parts.next()?.parse().ok()?;
        let mi: i64 = parts.next()?.parse().ok()?;
        let s: i64 = match parts.next() {
            Some(s) => s.parse().ok()?,
            None => 0,
        };
        if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&s) {
            return None;
        }
        secs += h * 3600 + mi * 60 + s;
    }
    Some(secs)
}

/// Format epoch seconds as `YYYY-MM-DD HH:MM:SS`.
pub fn format_datetime(epoch_secs: i64) -> String {
    let days = epoch_secs.div_euclid(86_400);
    let rem = epoch_secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let (h, mi, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (1999, 12, 31),
            (2024, 3, 1),
            (1900, 1, 1),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "{y}-{m}-{d}");
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn weekday_convention_matches_pandas() {
        // 1970-01-01 was a Thursday => 3 under Monday=0.
        assert_eq!(dayofweek(0), 3);
        // 2024-01-01 was a Monday.
        assert_eq!(dayofweek(days_from_civil(2024, 1, 1) * 86_400), 0);
        // 2024-01-07 was a Sunday.
        assert_eq!(dayofweek(days_from_civil(2024, 1, 7) * 86_400), 6);
        // Negative timestamps (pre-epoch): 1969-12-31 was a Wednesday.
        assert_eq!(dayofweek(-86_400), 2);
    }

    #[test]
    fn parse_and_format_datetime() {
        let ts = parse_datetime("2024-05-17 13:45:09").unwrap();
        assert_eq!(format_datetime(ts), "2024-05-17 13:45:09");
        let midnight = parse_datetime("2024-05-17").unwrap();
        assert_eq!(format_datetime(midnight), "2024-05-17 00:00:00");
        assert_eq!(midnight % 86_400, 0);
        // ISO 'T' separator also accepted.
        assert_eq!(parse_datetime("2024-05-17T13:45:09"), Some(ts));
    }

    #[test]
    fn parse_datetime_rejects_garbage() {
        assert_eq!(parse_datetime("not a date"), None);
        assert_eq!(parse_datetime("2024-13-01"), None);
        assert_eq!(parse_datetime("2024-01-32"), None);
        assert_eq!(parse_datetime("2024-01-01 25:00:00"), None);
        assert_eq!(parse_datetime(""), None);
    }

    #[test]
    fn scalar_nulls_and_views() {
        assert!(Scalar::Null.is_null());
        assert!(Scalar::Float(f64::NAN).is_null());
        assert!(!Scalar::Float(1.5).is_null());
        assert_eq!(Scalar::Int(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Bool(true).as_i64(), Some(1));
        assert_eq!(Scalar::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Scalar::Str("hi".into()).as_f64(), None);
    }

    #[test]
    fn scalar_ordering_nulls_last() {
        use std::cmp::Ordering::*;
        assert_eq!(Scalar::Null.cmp_values(&Scalar::Int(1)), Greater);
        assert_eq!(Scalar::Int(1).cmp_values(&Scalar::Null), Less);
        assert_eq!(Scalar::Int(2).cmp_values(&Scalar::Float(2.5)), Less);
        assert_eq!(
            Scalar::Str("a".into()).cmp_values(&Scalar::Str("b".into())),
            Less
        );
    }

    #[test]
    fn scalar_display() {
        assert_eq!(Scalar::Int(5).to_string(), "5");
        assert_eq!(Scalar::Float(5.0).to_string(), "5.0");
        assert_eq!(Scalar::Float(5.25).to_string(), "5.25");
        assert_eq!(Scalar::Bool(true).to_string(), "True");
        assert_eq!(Scalar::Null.to_string(), "NaN");
    }
}
