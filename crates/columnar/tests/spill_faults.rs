//! Spill-failure recovery sweep (the "full disk at 2 a.m." drill).
//!
//! Under injected spill-write and spill-read faults, every spill
//! operation must either succeed (retry / fallback-dir recovery) or
//! fail with a structured error — and EITHER WAY leave no `LAFPSPL1`
//! temp file behind once the [`SpillDir`] drops. Plans are installed
//! into the process-global registry, so this suite lives in its own
//! integration binary and serializes on [`LOCK`].

use lafp_columnar::column::Column;
use lafp_columnar::df;
use lafp_columnar::faults::{self, FaultPlan, FaultSite};
use lafp_columnar::spill::{spill_frame, SpillDir};
use lafp_columnar::{ColumnarError, DataFrame};
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn frame(rows: usize) -> DataFrame {
    df![
        ("a", Column::from_i64((0..rows as i64).collect())),
        (
            "s",
            Column::from_strings((0..rows).map(|i| format!("row-{i}")).collect::<Vec<_>>())
        ),
    ]
}

fn scratch_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "lafp-spill-faults-{tag}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Every spill file a dir could have written sits under its roots;
/// after drop, the roots themselves must be gone.
fn assert_roots_removed(roots: &[PathBuf]) {
    for r in roots {
        assert!(
            !r.exists(),
            "spill root {r:?} (and its LAFPSPL1 files) must be removed on drop"
        );
    }
}

#[test]
fn write_faults_recover_or_fail_clean_across_seeds() {
    let _l = lock();
    let f = frame(500);
    for seed in [42u64, 1337, 7, 99] {
        faults::stats().reset();
        let dir = SpillDir::at(scratch_root(&format!("w{seed}")));
        let roots = dir.root_paths();
        let guard = faults::install(FaultPlan::new(seed).with(FaultSite::SpillWrite, 0.3));
        let mut written = Vec::new();
        let mut clean_oom = 0usize;
        for _ in 0..40 {
            match spill_frame(&dir, &f) {
                Ok(file) => written.push(file),
                Err(ColumnarError::OutOfMemory { .. }) => clean_oom += 1,
                Err(other) => panic!("seed {seed}: expected clean OOM marker, got {other:?}"),
            }
        }
        drop(guard);
        let ok = written.len();
        assert!(ok > 0, "seed {seed}: retries should recover most writes");
        // Fault-free readback: recovery never corrupts data.
        for file in &written {
            let got = file.read_all().unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].num_rows(), 500);
        }
        drop(written);
        let snap = faults::stats().snapshot();
        assert!(
            snap.injected_at(FaultSite::SpillWrite) > 0,
            "seed {seed}: plan must actually fire"
        );
        assert!(
            snap.retries_recovered > 0,
            "seed {seed}: at least one op must succeed via retry (ok={ok}, oom={clean_oom})"
        );
        drop(dir);
        assert_roots_removed(&roots);
    }
}

#[test]
fn enospc_falls_back_to_secondary_root() {
    let _l = lock();
    let f = frame(200);
    faults::stats().reset();
    let dir = SpillDir::at(scratch_root("primary"))
        .with_fallbacks([scratch_root("fallback-a"), scratch_root("fallback-b")]);
    let roots = dir.root_paths();
    assert_eq!(roots.len(), 3);
    // p=0.5: roughly half the injected faults are ENOSPC-shaped, which
    // advance the active root; transient Io faults burn retries.
    let _g = faults::install(FaultPlan::new(13).with(FaultSite::SpillWrite, 0.5));
    let mut ok = 0usize;
    for _ in 0..60 {
        match spill_frame(&dir, &f) {
            Ok(_) => ok += 1,
            Err(ColumnarError::OutOfMemory { .. }) => {}
            Err(other) => panic!("expected clean OOM marker, got {other:?}"),
        }
    }
    drop(_g);
    let snap = faults::stats().snapshot();
    assert!(ok > 0, "most writes should survive p=0.5 with 6 attempts");
    assert!(
        snap.dir_fallbacks > 0,
        "injected ENOSPC must exercise the fallback-dir ladder ({snap:?})"
    );
    drop(dir);
    assert_roots_removed(&roots);
}

#[test]
fn read_faults_retry_and_never_return_wrong_data() {
    let _l = lock();
    let f = frame(300);
    faults::stats().reset();
    let dir = SpillDir::at(scratch_root("read"));
    let roots = dir.root_paths();
    // Write fault-free, read under injection.
    let file = spill_frame(&dir, &f).unwrap();
    let expected = f.row_hashes(&[]).unwrap();
    let _g = faults::install(FaultPlan::new(21).with(FaultSite::SpillRead, 0.4));
    let mut ok = 0usize;
    let mut failed = 0usize;
    for _ in 0..50 {
        match file.read_all() {
            Ok(frames) => {
                ok += 1;
                assert_eq!(frames.len(), 1);
                assert_eq!(
                    frames[0].row_hashes(&[]).unwrap(),
                    expected,
                    "a recovered read must be bit-identical"
                );
            }
            Err(ColumnarError::Io { .. }) => failed += 1,
            Err(other) => panic!("unexpected error shape {other:?}"),
        }
    }
    drop(_g);
    let snap = faults::stats().snapshot();
    assert!(ok > 0, "retries should recover reads (ok={ok}, failed={failed})");
    assert!(snap.injected_at(FaultSite::SpillRead) > 0);
    assert!(snap.retries_recovered > 0, "read retry path must run ({snap:?})");
    drop(file);
    drop(dir);
    assert_roots_removed(&roots);
}

#[test]
fn failed_writes_leave_no_partial_files_mid_run() {
    // Stronger than drop-time cleanup: while the dir is still alive, a
    // failed write must not leave its partial file on disk.
    let _l = lock();
    let f = frame(400);
    let dir = SpillDir::at(scratch_root("partial"));
    let root = dir.root_paths()[0].clone();
    let _g = faults::install(FaultPlan::new(2).with(FaultSite::SpillWrite, 1.0));
    for _ in 0..10 {
        let err = spill_frame(&dir, &f).unwrap_err();
        assert!(matches!(err, ColumnarError::OutOfMemory { .. }), "{err:?}");
    }
    drop(_g);
    if root.exists() {
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            leftovers.is_empty(),
            "failed writes leaked partial spill files: {leftovers:?}"
        );
    }
}
