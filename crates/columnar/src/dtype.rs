//! Column data types.

use std::fmt;

/// The dtype of a [`crate::Column`].
///
/// Mirrors the subset of the Pandas type system exercised by the paper's
/// benchmark programs, including the `category` dtype that the metadata
/// optimization of §3.6 switches low-cardinality read-only string columns to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers (pandas `int64`).
    Int64,
    /// 64-bit floats (pandas `float64`).
    Float64,
    /// Booleans.
    Bool,
    /// UTF-8 strings (pandas `object`).
    Utf8,
    /// Timestamps stored as seconds since the Unix epoch (pandas `datetime64`).
    Datetime,
    /// Dictionary-encoded strings (pandas `category`).
    Categorical,
}

impl DType {
    /// Parse a user-facing dtype name as accepted by `astype` / `read_csv`.
    pub fn parse(name: &str) -> Option<DType> {
        match name {
            "int64" | "int" | "i64" => Some(DType::Int64),
            "float64" | "float" | "f64" => Some(DType::Float64),
            "bool" | "boolean" => Some(DType::Bool),
            "str" | "object" | "utf8" | "string" => Some(DType::Utf8),
            "datetime" | "datetime64" | "datetime64[ns]" | "datetime64[s]" => {
                Some(DType::Datetime)
            }
            "category" => Some(DType::Categorical),
            _ => None,
        }
    }

    /// True for numeric dtypes (participate in arithmetic and `describe`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int64 | DType::Float64)
    }

    /// True for dtypes backed by strings (plain or dictionary encoded).
    pub fn is_string_like(self) -> bool {
        matches!(self, DType::Utf8 | DType::Categorical)
    }

    /// Fixed per-row width in bytes, where one exists (strings are `None`).
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DType::Int64 | DType::Float64 | DType::Datetime => Some(8),
            DType::Bool => Some(1),
            DType::Categorical => Some(4),
            DType::Utf8 => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DType::Int64 => "int64",
            DType::Float64 => "float64",
            DType::Bool => "bool",
            DType::Utf8 => "object",
            DType::Datetime => "datetime64",
            DType::Categorical => "category",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        for dt in [
            DType::Int64,
            DType::Float64,
            DType::Bool,
            DType::Utf8,
            DType::Datetime,
            DType::Categorical,
        ] {
            assert_eq!(DType::parse(&dt.to_string()), Some(dt), "{dt}");
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(DType::parse("int"), Some(DType::Int64));
        assert_eq!(DType::parse("str"), Some(DType::Utf8));
        assert_eq!(DType::parse("datetime64[ns]"), Some(DType::Datetime));
        assert_eq!(DType::parse("unknown"), None);
    }

    #[test]
    fn numeric_classification() {
        assert!(DType::Int64.is_numeric());
        assert!(DType::Float64.is_numeric());
        assert!(!DType::Utf8.is_numeric());
        assert!(DType::Categorical.is_string_like());
        assert!(DType::Utf8.is_string_like());
        assert!(!DType::Datetime.is_string_like());
    }

    #[test]
    fn widths() {
        assert_eq!(DType::Int64.fixed_width(), Some(8));
        assert_eq!(DType::Bool.fixed_width(), Some(1));
        assert_eq!(DType::Categorical.fixed_width(), Some(4));
        assert_eq!(DType::Utf8.fixed_width(), None);
    }
}
