//! The eager engines: Pandas-like (single-threaded, whole-frame) and
//! Modin-like (the same API executed partition-parallel across threads).
//!
//! Both are *eager*: every call materializes its result immediately, which
//! is exactly why the paper's LaFP optimizations matter most on these
//! backends (§2.6 — "the backend cannot perform optimization across
//! nodes"). The engine charges a transient working set per operation
//! (scaled by [`BackendKind::transient_factor`]) against the shared
//! [`MemoryTracker`]; result frames are charged by the caller, which owns
//! their lifetime.

use crate::kind::BackendKind;
use crate::memory::MemoryTracker;
use lafp_columnar::csv::{read_csv_par, CsvOptions};
use lafp_columnar::describe::describe;
use lafp_columnar::groupby::{group_by_par, GroupBySpec};
use lafp_columnar::join::{merge_par, JoinKind};
use lafp_columnar::pool::WorkerPool;
use lafp_columnar::sort::{sort_values_par, SortOptions};
use lafp_columnar::{AggKind, DataFrame, HeapSize, Result, Scalar, Series};
use lafp_expr::Expr;
use std::path::Path;
use std::sync::Arc;

/// An eager execution engine over materialized frames.
#[derive(Debug, Clone)]
pub struct EagerEngine {
    kind: BackendKind,
    tracker: Arc<MemoryTracker>,
    pool: Arc<WorkerPool>,
}

impl EagerEngine {
    /// Create an engine of `kind` charging `tracker`.
    ///
    /// `threads` only matters for [`BackendKind::Modin`]: the Pandas
    /// engine is single-threaded *by definition* (that is the backend it
    /// models), so it always gets one worker no matter what is
    /// requested. For Modin, `threads = 0` means "default" and resolves
    /// through the one shared resolver
    /// ([`lafp_columnar::pool::resolve_threads`]): the `LAFP_THREADS`
    /// environment variable if set, else the machine's available
    /// parallelism — the same rule every other layer (the Dask engine,
    /// the global pool, the bench harness) uses, so a default-threaded
    /// Modin engine can never silently disagree with the rest of the
    /// system about what "default" means.
    pub fn new(kind: BackendKind, tracker: Arc<MemoryTracker>, threads: usize) -> EagerEngine {
        let pool = if kind == BackendKind::Modin {
            WorkerPool::new(threads)
        } else {
            WorkerPool::sequential()
        };
        EagerEngine {
            kind,
            tracker,
            pool: Arc::new(pool),
        }
    }

    /// The backend kind this engine implements.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The shared memory tracker.
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Worker threads used for partition-parallel ops (1 for Pandas).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Charge the transient working set for an op over `input`, returning
    /// the reservation to hold for the op's duration.
    fn transient(&self, input: &DataFrame) -> Result<crate::memory::MemoryReservation> {
        let bytes = (input.heap_size() as f64 * self.kind.transient_factor()) as usize;
        self.tracker.charge(bytes)
    }

    /// Momentarily charge an op's result while its transient scratch is
    /// still held — input, scratch and output coexist at the peak of a
    /// whole-frame eager operation, as in real pandas. The caller
    /// re-charges the returned frame for its lifetime.
    fn finish(&self, out: DataFrame) -> Result<DataFrame> {
        let _peak = self.tracker.charge(out.heap_size())?;
        Ok(out)
    }

    /// Split a frame into up to `self.threads()` contiguous partitions.
    fn partition(&self, df: &DataFrame) -> Vec<DataFrame> {
        let rows = df.num_rows();
        let n = self.threads().min(rows.max(1));
        let base = rows / n;
        let extra = rows % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            out.push(df.slice(start, len));
            start += len;
        }
        out
    }

    /// Apply `f` to each partition on the shared worker pool and
    /// re-concatenate in partition order (Modin preserves row order).
    fn map_partitions<F>(&self, df: &DataFrame, f: F) -> Result<DataFrame>
    where
        F: Fn(&DataFrame) -> Result<DataFrame> + Sync,
    {
        if !self.pool.is_parallel() || df.num_rows() < 2 {
            return f(df);
        }
        let parts = self.partition(df);
        // try_map isolates a panicking partition worker (surfacing
        // `WorkerPanic` instead of aborting) and honours the pool's
        // cancellation token between claims.
        let results = self.pool.try_map(parts, |_, p| f(&p))?;
        let mut it = results.into_iter();
        let mut acc = it.next().expect("at least one partition");
        for r in it {
            acc = acc.concat(&r)?;
        }
        Ok(acc)
    }

    // -- operators --------------------------------------------------------

    /// `pd.read_csv(path, ...)`.
    pub fn read_csv(&self, path: &Path, options: &CsvOptions) -> Result<DataFrame> {
        // Parsing scratch is proportional to the file's text size and
        // coexists with the columns being built; charge both so a huge
        // unprojected read can itself blow the budget (the caller
        // re-charges the returned frame for its lifetime).
        let file_bytes = std::fs::metadata(path).map(|m| m.len() as usize).unwrap_or(0);
        let scale = if self.kind == BackendKind::Modin { 0.25 } else { 1.0 };
        let _scratch = self.tracker.charge((file_bytes as f64 * scale) as usize)?;
        let df = read_csv_par(path, options, &self.pool)?;
        let _built = self.tracker.charge(df.heap_size())?;
        Ok(df)
    }

    /// `df[mask-expr]` row filter.
    pub fn filter(&self, df: &DataFrame, predicate: &Expr) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        let out = self.map_partitions(df, |p| p.filter(&predicate.evaluate_mask(p)?))?;
        self.finish(out)
    }

    /// `df[col] = <expr>` (add or replace a computed column).
    pub fn with_column(&self, df: &DataFrame, name: &str, expr: &Expr) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        let out = self.map_partitions(df, |p| p.with_column(name, expr.evaluate(p)?))?;
        self.finish(out)
    }

    /// `df[[cols]]` projection.
    pub fn select(&self, df: &DataFrame, cols: &[String]) -> Result<DataFrame> {
        df.select(cols)
    }

    /// `df.drop(columns=[...])`.
    pub fn drop(&self, df: &DataFrame, cols: &[String]) -> Result<DataFrame> {
        df.drop(cols)
    }

    /// `df.rename(columns={...})`.
    pub fn rename(&self, df: &DataFrame, mapping: &[(String, String)]) -> Result<DataFrame> {
        df.rename(mapping)
    }

    /// `df.head(n)`.
    pub fn head(&self, df: &DataFrame, n: usize) -> Result<DataFrame> {
        Ok(df.head(n))
    }

    /// `df.tail(n)`.
    pub fn tail(&self, df: &DataFrame, n: usize) -> Result<DataFrame> {
        Ok(df.tail(n))
    }

    /// `df.groupby(keys)[value].agg()`. Modin runs the morsel-parallel
    /// kernel: worker-local accumulators over dynamically claimed row
    /// ranges, merged through the typed merge path.
    pub fn group_by(&self, df: &DataFrame, spec: &GroupBySpec) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        self.finish(group_by_par(df, spec, &self.pool)?)
    }

    /// `left.merge(right, on=..., how=...)`.
    pub fn merge(
        &self,
        left: &DataFrame,
        right: &DataFrame,
        on: &[String],
        how: JoinKind,
    ) -> Result<DataFrame> {
        // Join scratch: build table over right + output assembly.
        let bytes = ((left.heap_size() + right.heap_size()) as f64
            * self.kind.transient_factor()) as usize;
        let _t = self.tracker.charge(bytes)?;
        // Modin path: the pool-driven join partitions the build side by
        // hash and probes the left side in morsels (the build table is
        // shared, not rebuilt per partition as the old
        // partition-and-rejoin path did).
        self.finish(merge_par(left, right, on, how, &self.pool)?)
    }

    /// `df.sort_values(by=..., ascending=...)`.
    pub fn sort_values(&self, df: &DataFrame, options: &SortOptions) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        // Morsel-parallel argsort + pairwise run merge on the pool; the
        // result is the sequential stable sort bit for bit.
        self.finish(sort_values_par(df, options, &self.pool)?)
    }

    /// `df.drop_duplicates(subset=...)`.
    pub fn drop_duplicates(&self, df: &DataFrame, subset: &[String]) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        df.drop_duplicates(subset)
    }

    /// `df.describe()`.
    pub fn describe(&self, df: &DataFrame) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        describe(df)
    }

    /// Frame-level `df.fillna(value)` over every column where it applies.
    pub fn fillna(&self, df: &DataFrame, value: &Scalar) -> Result<DataFrame> {
        let _t = self.transient(df)?;
        self.map_partitions(df, |p| {
            let mut cols = Vec::with_capacity(p.num_columns());
            for s in p.series() {
                // Only fill columns whose dtype can absorb the value.
                let filled = s.column().fillna(value);
                cols.push(match filled {
                    Ok(c) => Series::new(s.name(), c),
                    Err(_) => s.clone(),
                });
            }
            DataFrame::new(cols)
        })
    }

    /// Scalar reduction over one column (`df[col].sum()` etc.).
    pub fn reduce(&self, df: &DataFrame, column: &str, agg: AggKind) -> Result<Scalar> {
        let col = df.column(column)?.column();
        Ok(match agg {
            AggKind::Sum => col.sum(),
            AggKind::Mean => col.mean(),
            AggKind::Count => col.count(),
            AggKind::Min => col.min(),
            AggKind::Max => col.max(),
            AggKind::NUnique => col.nunique(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::column::Column;
    use lafp_columnar::df;

    fn engines() -> Vec<EagerEngine> {
        vec![
            EagerEngine::new(BackendKind::Pandas, MemoryTracker::unlimited(), 0),
            EagerEngine::new(BackendKind::Modin, MemoryTracker::unlimited(), 4),
        ]
    }

    fn sample(rows: usize) -> DataFrame {
        df![
            (
                "fare",
                Column::from_f64((0..rows).map(|i| (i as f64) - 2.0).collect())
            ),
            (
                "day",
                Column::from_i64((0..rows).map(|i| (i % 7) as i64).collect())
            ),
            (
                "passenger_count",
                Column::from_i64((0..rows).map(|i| (i % 4 + 1) as i64).collect())
            ),
        ]
    }

    #[test]
    fn pandas_is_single_threaded_modin_parallel() {
        let p = EagerEngine::new(BackendKind::Pandas, MemoryTracker::unlimited(), 8);
        assert_eq!(p.threads(), 1);
        let m = EagerEngine::new(BackendKind::Modin, MemoryTracker::unlimited(), 0);
        assert!(m.threads() >= 1);
    }

    #[test]
    fn filter_matches_across_engines() {
        let df = sample(101);
        let pred = Expr::col("fare").gt(Expr::lit_float(0.0));
        let expected = engines()[0].filter(&df, &pred).unwrap();
        for e in engines() {
            let got = e.filter(&df, &pred).unwrap();
            assert_eq!(got, expected, "{}", e.kind());
            assert_eq!(got.num_rows(), 98);
        }
    }

    #[test]
    fn with_column_matches_across_engines() {
        let df = sample(50);
        let expr = Expr::col("fare").arith(lafp_columnar::column::ArithOp::Mul, Expr::lit_float(2.0));
        let expected = engines()[0].with_column(&df, "double", &expr).unwrap();
        for e in engines() {
            assert_eq!(e.with_column(&df, "double", &expr).unwrap(), expected);
        }
    }

    #[test]
    fn group_by_matches_across_engines() {
        let df = sample(97);
        let spec = GroupBySpec {
            keys: vec!["day".into()],
            value: "passenger_count".into(),
            agg: AggKind::Sum,
        };
        let expected = engines()[0].group_by(&df, &spec).unwrap();
        for e in engines() {
            assert_eq!(e.group_by(&df, &spec).unwrap(), expected, "{}", e.kind());
        }
    }

    #[test]
    fn merge_matches_across_engines() {
        let left = sample(40);
        let lookup = df![
            ("day", Column::from_i64(vec![0, 1, 2, 3, 4, 5, 6])),
            (
                "day_name",
                Column::from_strings(vec!["mon", "tue", "wed", "thu", "fri", "sat", "sun"])
            ),
        ];
        let expected = engines()[0]
            .merge(&left, &lookup, &["day".into()], JoinKind::Inner)
            .unwrap();
        for e in engines() {
            let got = e
                .merge(&left, &lookup, &["day".into()], JoinKind::Inner)
                .unwrap();
            assert_eq!(got, expected, "{}", e.kind());
        }
    }

    #[test]
    fn reduce_and_describe() {
        let e = &engines()[0];
        let df = sample(10);
        assert_eq!(e.reduce(&df, "day", AggKind::Max).unwrap(), Scalar::Int(6));
        let d = e.describe(&df).unwrap();
        assert_eq!(d.num_rows(), 8);
        assert!(e.reduce(&df, "ghost", AggKind::Sum).is_err());
    }

    #[test]
    fn transient_charge_can_oom() {
        // Budget below the transient factor of a pandas filter over ~8KB.
        let tracker = MemoryTracker::with_budget(2_000);
        let e = EagerEngine::new(BackendKind::Pandas, tracker, 0);
        let df = sample(500);
        let pred = Expr::col("fare").gt(Expr::lit_float(0.0));
        let err = e.filter(&df, &pred).unwrap_err();
        assert!(matches!(
            err,
            lafp_columnar::ColumnarError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn modin_transient_is_cheaper_than_pandas() {
        // At an eager op's peak, input + scratch + result coexist: pandas
        // needs ~2x the input beyond what it holds (factor 1.0 + result),
        // modin ~1.3x (factor 0.25 + result) — the calibration behind the
        // Figure-12 matrix.
        let df = sample(500);
        let budget = (df.heap_size() as f64 * 1.6) as usize;
        let pred = Expr::col("fare").gt(Expr::lit_float(0.0));
        let pandas = EagerEngine::new(BackendKind::Pandas, MemoryTracker::with_budget(budget), 0);
        assert!(pandas.filter(&df, &pred).is_err());
        let modin = EagerEngine::new(BackendKind::Modin, MemoryTracker::with_budget(budget), 2);
        assert!(modin.filter(&df, &pred).is_ok());
    }

    #[test]
    fn fillna_fills_compatible_columns() {
        let e = &engines()[0];
        let df = df![
            ("x", Column::from_opt_f64(vec![Some(1.0), None])),
            ("s", Column::from_strings(vec!["a", "b"])),
        ];
        let out = e.fillna(&df, &Scalar::Float(0.0)).unwrap();
        assert_eq!(out.column("x").unwrap().get(1), Scalar::Float(0.0));
        assert_eq!(out.column("s").unwrap().get(0), Scalar::Str("a".into()));
    }

    #[test]
    fn sort_and_dedup_and_headtail() {
        let e = &engines()[1];
        let df = sample(20);
        let sorted = e
            .sort_values(&df, &SortOptions::single("fare", false))
            .unwrap();
        assert_eq!(sorted.column("fare").unwrap().get(0), Scalar::Float(17.0));
        let d = e.drop_duplicates(&df, &["day".into()]).unwrap();
        assert_eq!(d.num_rows(), 7);
        assert_eq!(e.head(&df, 3).unwrap().num_rows(), 3);
        assert_eq!(e.tail(&df, 3).unwrap().num_rows(), 3);
    }
}
