//! Process-wide operator-fusion telemetry.
//!
//! The streaming backend fuses maximal runs of row-local operators
//! (filter / with-column / select / drop / rename / fillna, plus a
//! terminal group-by, reduce, or len) into a single pass per morsel
//! (see `lafp-backends`' `dask` module). These counters record how much
//! of a query ran fused and — crucially for the acceptance tests — how
//! many intermediate frames the op-by-op path materialized, so a test
//! can assert that a fused chain produced **zero** intermediates
//! without threading instrumentation through every operator.
//!
//! Counters are cumulative atomics; [`FusionStats::reset`] zeroes them
//! between measured runs. Engines hold their own instance (so parallel
//! tests don't observe each other) and mirror into [`global`] for
//! process-level telemetry, the same split the spill counters use.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative fusion counters. Each engine records into its own
/// instance and mirrors into [`global`].
#[derive(Debug, Default)]
pub struct FusionStats {
    chains: AtomicU64,
    fused_ops: AtomicU64,
    fused_morsels: AtomicU64,
    fused_rows_in: AtomicU64,
    intermediate_frames: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionSnapshot {
    /// Fused chains planned (one per chain per batch execution).
    pub chains: u64,
    /// Operators absorbed into those chains, terminals included.
    pub fused_ops: u64,
    /// Morsels that went through a fused chain end to end.
    pub fused_morsels: u64,
    /// Input rows entering fused chains.
    pub fused_rows_in: u64,
    /// Intermediate frames materialized by the *unfused* op-by-op
    /// path (one per row-local operator hop). Zero for a query that
    /// ran entirely through fused chains.
    pub intermediate_frames: u64,
}

impl FusionStats {
    /// Record one planned chain that absorbed `ops` operators.
    pub fn record_chain(&self, ops: usize) {
        self.chains.fetch_add(1, Ordering::Relaxed);
        self.fused_ops.fetch_add(ops as u64, Ordering::Relaxed);
    }

    /// Record one morsel of `rows_in` input rows run through a chain.
    pub fn record_fused_morsel(&self, rows_in: usize) {
        self.fused_morsels.fetch_add(1, Ordering::Relaxed);
        self.fused_rows_in
            .fetch_add(rows_in as u64, Ordering::Relaxed);
    }

    /// Record one intermediate frame built by an unfused row-local hop.
    pub fn record_intermediate(&self) {
        self.intermediate_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> FusionSnapshot {
        FusionSnapshot {
            chains: self.chains.load(Ordering::Relaxed),
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
            fused_morsels: self.fused_morsels.load(Ordering::Relaxed),
            fused_rows_in: self.fused_rows_in.load(Ordering::Relaxed),
            intermediate_frames: self.intermediate_frames.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between measured runs).
    pub fn reset(&self) {
        self.chains.store(0, Ordering::Relaxed);
        self.fused_ops.store(0, Ordering::Relaxed);
        self.fused_morsels.store(0, Ordering::Relaxed);
        self.fused_rows_in.store(0, Ordering::Relaxed);
        self.intermediate_frames.store(0, Ordering::Relaxed);
    }
}

/// The process-wide counters.
pub fn global() -> &'static FusionStats {
    static GLOBAL: FusionStats = FusionStats {
        chains: AtomicU64::new(0),
        fused_ops: AtomicU64::new(0),
        fused_morsels: AtomicU64::new(0),
        fused_rows_in: AtomicU64::new(0),
        intermediate_frames: AtomicU64::new(0),
    };
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = FusionStats::default();
        stats.record_chain(4);
        stats.record_fused_morsel(1000);
        stats.record_fused_morsel(24);
        stats.record_intermediate();
        assert_eq!(
            stats.snapshot(),
            FusionSnapshot {
                chains: 1,
                fused_ops: 4,
                fused_morsels: 2,
                fused_rows_in: 1024,
                intermediate_frames: 1,
            }
        );
        stats.reset();
        assert_eq!(stats.snapshot(), FusionSnapshot::default());
    }

    #[test]
    fn global_is_shared() {
        let before = global().snapshot();
        global().record_chain(2);
        let after = global().snapshot();
        assert_eq!(after.chains, before.chains + 1);
        assert_eq!(after.fused_ops, before.fused_ops + 2);
    }
}
