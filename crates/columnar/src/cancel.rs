//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle checked at the
//! executor's natural yield points — morsel claims, chunk boundaries,
//! spill operations, external-sort merge rounds. Cancellation is
//! *cooperative*: nothing is interrupted mid-kernel; the query unwinds
//! via ordinary `Result` propagation, so every RAII guard (memory
//! reservations, spill temp files, channel hang-ups) runs and the
//! engine is immediately reusable.
//!
//! Two triggers share one code path:
//!
//! - **Caller-side cancellation** — [`CancelToken::cancel`] flips a
//!   shared flag; every clone observes it.
//! - **Deadline** — [`CancelToken::with_timeout`] derives a per-query
//!   child that also trips once the deadline passes
//!   (`LAFP_QUERY_TIMEOUT_MS` wires this from the environment).
//!
//! Both surface as [`ColumnarError::Cancelled`] with a message saying
//! which trigger fired.

use crate::error::{ColumnarError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle. Clones share the cancel flag;
/// deadlines are per-handle (set when the handle is derived).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token. Every clone (and every child derived with
    /// [`with_timeout`](CancelToken::with_timeout)) observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled or its deadline passed?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Cheap cooperative check: `Err(Cancelled)` once tripped. A passed
    /// deadline latches the shared flag so later checks (and siblings
    /// of this handle) fail fast without consulting the clock.
    pub fn check(&self) -> Result<()> {
        if self.flag.load(Ordering::Relaxed) {
            return Err(ColumnarError::Cancelled("query cancelled".into()));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.flag.store(true, Ordering::Relaxed);
                return Err(ColumnarError::Cancelled(
                    "query deadline exceeded".into(),
                ));
            }
        }
        Ok(())
    }

    /// Derive a child sharing this token's cancel flag with a deadline
    /// `timeout` from now (tighter of the two if this handle already
    /// has one).
    pub fn with_timeout(&self, timeout: Duration) -> CancelToken {
        let new = Instant::now() + timeout;
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(match self.deadline {
                Some(d) => d.min(new),
                None => new,
            }),
        }
    }

    /// Derive the per-query token: this handle plus the
    /// `LAFP_QUERY_TIMEOUT_MS` deadline if the variable is set (and
    /// parses; `0` means "already expired", useful for deterministic
    /// timeout tests).
    pub fn for_query(&self) -> CancelToken {
        match std::env::var("LAFP_QUERY_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            Some(ms) => self.with_timeout(Duration::from_millis(ms)),
            None => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(matches!(
            c.check(),
            Err(ColumnarError::Cancelled(_))
        ));
    }

    #[test]
    fn zero_timeout_trips_immediately_and_latches() {
        let t = CancelToken::new();
        let q = t.with_timeout(Duration::from_millis(0));
        let err = q.check().unwrap_err();
        assert!(matches!(err, ColumnarError::Cancelled(_)));
        // Deadline latched the shared flag: the parent now fails too.
        assert!(t.is_cancelled());
    }

    #[test]
    fn long_timeout_does_not_trip() {
        let t = CancelToken::new().with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn child_keeps_tighter_deadline() {
        let t = CancelToken::new().with_timeout(Duration::from_millis(0));
        let child = t.with_timeout(Duration::from_secs(3600));
        assert!(child.check().is_err(), "parent deadline is tighter");
    }

    #[test]
    fn for_query_reads_env() {
        // Env mutation is process-global; this test owns the variable.
        std::env::set_var("LAFP_QUERY_TIMEOUT_MS", "0");
        let q = CancelToken::new().for_query();
        std::env::remove_var("LAFP_QUERY_TIMEOUT_MS");
        assert!(q.check().is_err());
        let q2 = CancelToken::new().for_query();
        assert!(q2.check().is_ok());
    }
}
