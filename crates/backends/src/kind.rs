//! Backend selection, mirroring the paper's
//! `pd.BACKEND_ENGINE = pd.BackendEngines.PANDAS` configuration line (§2.6).

use std::fmt;

/// Which execution backend LaFP drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Single-threaded eager engine (the Pandas stand-in).
    Pandas,
    /// Partition-parallel eager engine (the Modin stand-in).
    Modin,
    /// Lazy, partitioned, out-of-core engine (the Dask stand-in).
    /// The paper makes Dask LaFP's default backend.
    #[default]
    Dask,
}

impl BackendKind {
    /// All backends, in the order the paper's figures list them.
    pub const ALL: [BackendKind; 3] = [BackendKind::Pandas, BackendKind::Modin, BackendKind::Dask];

    /// Parse a configuration name.
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.to_ascii_lowercase().as_str() {
            "pandas" => Some(BackendKind::Pandas),
            "modin" => Some(BackendKind::Modin),
            "dask" => Some(BackendKind::Dask),
            _ => None,
        }
    }

    /// Is this an eager backend (executes operator-by-operator)?
    ///
    /// Pandas and Modin are eager; Dask is lazy (§2.6).
    pub fn is_eager(self) -> bool {
        !matches!(self, BackendKind::Dask)
    }

    /// Does this backend guarantee row order for positional access?
    /// Dask does not (§5.2).
    pub fn preserves_row_order(self) -> bool {
        !matches!(self, BackendKind::Dask)
    }

    /// Transient working-set factor: how many extra bytes of scratch the
    /// backend touches per byte of operator input. Pandas-style whole-frame
    /// ops copy their input; Modin's partition-at-a-time execution (with a
    /// Ray-like shared object store) keeps the scratch smaller. These
    /// constants are the calibration knobs documented in DESIGN.md.
    pub fn transient_factor(self) -> f64 {
        match self {
            BackendKind::Pandas => 1.0,
            BackendKind::Modin => 0.25,
            BackendKind::Dask => 0.0, // charges per-partition explicitly
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BackendKind::Pandas => "pandas",
            BackendKind::Modin => "modin",
            BackendKind::Dask => "dask",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(BackendKind::parse("PANDAS"), Some(BackendKind::Pandas));
        assert_eq!(BackendKind::parse("spark"), None);
    }

    #[test]
    fn classification() {
        assert!(BackendKind::Pandas.is_eager());
        assert!(BackendKind::Modin.is_eager());
        assert!(!BackendKind::Dask.is_eager());
        assert!(!BackendKind::Dask.preserves_row_order());
        assert!(BackendKind::Pandas.preserves_row_order());
        assert_eq!(BackendKind::default(), BackendKind::Dask);
    }
}
