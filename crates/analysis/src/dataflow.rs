//! A small generic backward dataflow solver over the PandaScript CFG,
//! at statement granularity (paper Eq. 3–4: `Out = ∪ In(succ)`,
//! `In = Gen ∪ (Out − Kill)` — here expressed as an arbitrary transfer).

use lafp_ir::ast::StmtId;
use lafp_ir::cfg::{BlockId, Cfg, Terminator};
use std::collections::HashMap;

/// A program point: before/after a statement or a block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Point {
    /// The i-th simple statement of a block.
    Stmt(BlockId, usize),
    /// The block's terminator (branch/loop condition evaluation).
    Term(BlockId),
}

/// Units a backward analysis visits inside one block, in *reverse* order:
/// terminator first, then statements from last to first.
pub fn block_units(cfg: &Cfg, b: BlockId) -> Vec<(Point, Option<StmtId>)> {
    let mut units = Vec::new();
    let term_stmt = match &cfg.blocks[b].terminator {
        Terminator::Branch { stmt, .. } | Terminator::LoopBranch { stmt, .. } => Some(*stmt),
        _ => None,
    };
    units.push((Point::Term(b), term_stmt));
    for (i, &s) in cfg.blocks[b].stmts.iter().enumerate().rev() {
        units.push((Point::Stmt(b, i), Some(s)));
    }
    units
}

/// A join-semilattice fact set for backward analyses.
pub trait Lattice: Clone + PartialEq + Default {
    /// In-place join (set union for the analyses in this crate).
    fn join(&mut self, other: &Self);
}

/// Backward dataflow: supply a transfer function from `Out` to `In` for
/// each unit; the solver iterates to fixpoint and returns the `In` fact of
/// every program point (the fact *before* the unit executes).
pub fn solve_backward<L: Lattice>(
    cfg: &Cfg,
    transfer: &mut dyn FnMut(Option<StmtId>, Point, &L) -> L,
) -> HashMap<Point, L> {
    let nblocks = cfg.blocks.len();
    // block_in[b] = fact at the top of block b (before its first unit).
    let mut block_in: Vec<L> = vec![L::default(); nblocks];
    let mut facts: HashMap<Point, L> = HashMap::new();
    // Iterate blocks in postorder-ish (reverse of reverse_postorder) until
    // stable — fine for the small CFGs PandaScript produces.
    let order: Vec<BlockId> = cfg.reverse_postorder().into_iter().rev().collect();
    loop {
        let mut changed = false;
        for &b in &order {
            // Out of the block = join of successors' In.
            let mut out = L::default();
            for s in cfg.successors(b) {
                out.join(&block_in[s]);
            }
            // Walk units backward.
            for (point, stmt) in block_units(cfg, b) {
                let in_fact = transfer(stmt, point, &out);
                facts.insert(point, in_fact.clone());
                out = in_fact;
            }
            if block_in[b] != out {
                block_in[b] = out;
                changed = true;
            }
        }
        if !changed {
            return facts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_ir::lower::lower;
    use lafp_ir::parser::parse;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Names(BTreeSet<String>);

    impl Lattice for Names {
        fn join(&mut self, other: &Self) {
            self.0.extend(other.0.iter().cloned());
        }
    }

    #[test]
    fn loop_facts_reach_fixpoint() {
        // x used in the loop body must be live before the loop.
        let src = "x = 1\nfor i in xs:\n    y = x\nz = 1\n";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let facts = solve_backward::<Names>(&cfg, &mut |stmt, _point, out| {
            let mut f = out.clone();
            if let Some(id) = stmt {
                match &ast.stmt(id).kind {
                    lafp_ir::ast::StmtKind::Assign { target, value } => {
                        if let lafp_ir::ast::Target::Name(n) = target {
                            f.0.remove(n);
                        }
                        for n in value.names_used() {
                            f.0.insert(n);
                        }
                    }
                    lafp_ir::ast::StmtKind::For { var, iter, .. } => {
                        f.0.remove(var);
                        for n in iter.names_used() {
                            f.0.insert(n);
                        }
                    }
                    _ => {}
                }
            }
            f
        });
        // Before the first statement (x = 1), x must not be live; xs must be.
        let entry_first = facts[&Point::Stmt(cfg.entry, 0)].clone();
        assert!(!entry_first.0.contains("x"));
        assert!(entry_first.0.contains("xs"));
    }
}
