//! Differential tests pinning the arena-backed `Utf8` representation to
//! the `Arc<str>` semantics it replaced.
//!
//! The PR 5 refactor swapped `Column::Utf8`'s payload from
//! `Vec<Arc<str>>` to a byte arena + offsets ([`lafp_columnar::Utf8Col`]).
//! Nothing observable may change: `take`/`filter`/`slice`/`fillna`/
//! concat/CSV round-trips must produce scalar-identical results,
//! including the awkward values a byte arena could plausibly mishandle —
//! empty strings (zero-length ranges), strings with embedded NUL bytes
//! (no sentinel confusion: NUL is just a byte, handled identically
//! everywhere, including the normalized-key sort that must *refuse* to
//! pack NUL-bearing lanes), non-ASCII (offsets always on char
//! boundaries), and columns longer than one 64 Ki-row morsel so the
//! parallel kernels cross arena chunk seams.

use lafp_columnar::bitmap::Bitmap;
use lafp_columnar::column::{CmpOp, Column, ColumnBuilder};
use lafp_columnar::csv::{read_csv, write_csv, CsvOptions};
use lafp_columnar::sort::{sort_values, sort_values_par, SortOptions};
use lafp_columnar::{DType, DataFrame, Scalar, Series, WorkerPool};
use proptest::prelude::*;

/// A string column built from optional values (None = null).
fn col(values: &[Option<String>]) -> Column {
    Column::from_opt_strings(values.to_vec())
}

/// Reference row view: what the `Arc<str>` column reported per row.
fn rows_of(c: &Column) -> Vec<Option<String>> {
    (0..c.len())
        .map(|i| match c.get(i) {
            Scalar::Null => None,
            Scalar::Str(s) => Some(s),
            other => panic!("utf8 column yielded {other:?}"),
        })
        .collect()
}

/// Assert a column holds exactly these rows (nulls included).
fn assert_rows(c: &Column, want: &[Option<String>], what: &str) {
    assert_eq!(c.len(), want.len(), "{what}: length");
    assert_eq!(&rows_of(c), want, "{what}");
}

/// Value pool covering the arena's edge cases: empty, embedded NUL,
/// non-ASCII (multi-byte UTF-8), and plain values.
fn tricky_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("a\0b".to_string()),
        Just("\0".to_string()),
        Just("naïve-東京-🗼".to_string()),
        Just("NaN".to_string()),
        "[a-z]{0,12}",
    ]
}

fn opt_strings(max: usize) -> impl Strategy<Value = Vec<Option<String>>> {
    prop::collection::vec(prop::option::of(tricky_string()), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `take` reproduces the per-row gather exactly.
    #[test]
    fn take_matches_rowwise(values in opt_strings(40), seed in 0usize..1000) {
        let c = col(&values);
        if !values.is_empty() {
            let indices: Vec<usize> = (0..values.len())
                .map(|i| (i * 7 + seed) % values.len())
                .collect();
            let taken = c.take(&indices).unwrap();
            let want: Vec<Option<String>> =
                indices.iter().map(|&i| values[i].clone()).collect();
            assert_rows(&taken, &want, "take");
        }
    }

    /// `filter` keeps exactly the masked rows, in order.
    #[test]
    fn filter_matches_rowwise(values in opt_strings(40), seed in 0u64..1000) {
        let c = col(&values);
        let mask = Bitmap::from_iter(
            (0..values.len()).map(|i| !(i as u64).wrapping_mul(seed + 1).is_multiple_of(3)),
        );
        let filtered = c.filter(&mask).unwrap();
        let want: Vec<Option<String>> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.get(*i))
            .map(|(_, v)| v.clone())
            .collect();
        assert_rows(&filtered, &want, "filter");
    }

    /// `slice` (zero-copy: shared arena) matches the row window, and
    /// slices of slices compose.
    #[test]
    fn slice_matches_rowwise(
        values in opt_strings(40),
        offset in 0usize..50,
        len in 0usize..50,
    ) {
        let c = col(&values);
        let sliced = c.slice(offset, len);
        let start = offset.min(values.len());
        let end = offset.saturating_add(len).min(values.len());
        assert_rows(&sliced, &values[start..end], "slice");
        // Slice of slice still reads through the shared arena.
        let again = sliced.slice(1, 2);
        let inner: Vec<Option<String>> =
            values[start..end].iter().skip(1).take(2).cloned().collect();
        assert_rows(&again, &inner, "slice of slice");
    }

    /// `fillna` replaces exactly the null rows and drops the mask.
    #[test]
    fn fillna_matches_rowwise(values in opt_strings(40), fill in tricky_string()) {
        let c = col(&values);
        let filled = c.fillna(&Scalar::Str(fill.clone())).unwrap();
        let want: Vec<Option<String>> = values
            .iter()
            .map(|v| Some(v.clone().unwrap_or_else(|| fill.clone())))
            .collect();
        assert_rows(&filled, &want, "fillna");
        prop_assert_eq!(filled.count_null(), 0);
    }

    /// `concat` preserves both sides' rows (null slots normalized like
    /// the old builder loop).
    #[test]
    fn concat_matches_rowwise(a in opt_strings(25), b in opt_strings(25)) {
        let out = col(&a).concat(&col(&b)).unwrap();
        let want: Vec<Option<String>> = a.iter().chain(b.iter()).cloned().collect();
        assert_rows(&out, &want, "concat");
    }

    /// Comparisons and equality are byte-accurate (embedded NUL and
    /// multi-byte values compare exactly like `str` comparison).
    #[test]
    fn compare_matches_str_semantics(values in opt_strings(30), needle in tricky_string()) {
        let c = col(&values);
        let eq = c.compare_scalar(CmpOp::Eq, &Scalar::Str(needle.clone())).unwrap();
        let lt = c.compare_scalar(CmpOp::Lt, &Scalar::Str(needle.clone())).unwrap();
        for (i, v) in values.iter().enumerate() {
            match v {
                None => {
                    prop_assert!(!eq.get(i));
                    prop_assert!(!lt.get(i));
                }
                Some(s) => {
                    prop_assert_eq!(eq.get(i), s == &needle, "row {}", i);
                    prop_assert_eq!(lt.get(i), s.as_str() < needle.as_str(), "row {}", i);
                }
            }
        }
    }

    /// Categorical round-trip through the arena-backed dictionary.
    #[test]
    fn categorical_roundtrip(values in opt_strings(30)) {
        let c = col(&values);
        let cat = c.to_categorical().unwrap();
        prop_assert_eq!(cat.dtype(), DType::Categorical);
        let back = cat.to_utf8().unwrap();
        assert_rows(&back, &values, "categorical roundtrip");
    }
}

/// CSV round-trip: quoted fields, non-ASCII and nulls survive the
/// write → parse → arena-build cycle. (Embedded NUL is excluded here:
/// the CSV layer itself treats a NUL like any byte, but asserting that
/// is `csv_preserves_embedded_nul` below — proptest shrinking on
/// control characters makes failures unreadable otherwise.)
#[test]
fn csv_roundtrip_preserves_arena_semantics() {
    let values: Vec<Option<String>> = vec![
        Some("plain".into()),
        None,
        Some("with,comma".into()),
        Some("say \"hi\"".into()),
        Some("naïve-東京".into()),
        None,
        Some("NaN".into()),
    ];
    let df = DataFrame::new(vec![
        Series::new("id", Column::from_i64((0..values.len() as i64).collect())),
        Series::new("s", col(&values)),
    ])
    .unwrap();
    let path = std::env::temp_dir().join(format!("lafp-utf8-arena-{}.csv", std::process::id()));
    write_csv(&df, &path).unwrap();
    let back = read_csv(&path, &CsvOptions::new()).unwrap();
    std::fs::remove_file(&path).ok();
    // The empty cell reads back as null either way; everything else must
    // be byte-identical.
    assert_rows(back.column("s").unwrap().column(), &values, "csv roundtrip");
}

/// Embedded NUL bytes are content, not sentinels: every kernel treats
/// them identically to the `Arc<str>` representation (which also just
/// stored the byte), including the CSV writer/reader pair.
#[test]
fn csv_preserves_embedded_nul() {
    let values: Vec<Option<String>> =
        vec![Some("a\0b".into()), Some("\0\0".into()), Some("plain".into())];
    let df = DataFrame::new(vec![Series::new("s", col(&values))]).unwrap();
    let path = std::env::temp_dir().join(format!("lafp-utf8-nul-{}.csv", std::process::id()));
    write_csv(&df, &path).unwrap();
    let back = read_csv(&path, &CsvOptions::new()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_rows(back.column("s").unwrap().column(), &values, "csv nul roundtrip");
}

/// The normalized-key sort must keep refusing to pack NUL-bearing
/// string lanes (a packed `\0`-prefixed value would collide with the
/// zero-padding of shorter values) — sorting with NULs present stays
/// correct via the fallback comparator.
#[test]
fn sort_with_embedded_nul_and_multikey() {
    let values = vec![
        Some("b\0".to_string()),
        Some("b".to_string()),
        Some("".to_string()),
        None,
        Some("b\0a".to_string()),
        Some("a\u{ff}".to_string()),
    ];
    let df = DataFrame::new(vec![
        Series::new("s", col(&values)),
        Series::new("tie", Column::from_i64(vec![1, 2, 3, 4, 5, 6])),
    ])
    .unwrap();
    let sorted = sort_values(
        &df,
        &SortOptions {
            by: vec!["s".into(), "tie".into()],
            ascending: vec![true, true],
        },
    )
    .unwrap();
    // str order: "" < "a\u{ff}" < "b" < "b\0" < "b\0a", null last.
    let got = rows_of(sorted.column("s").unwrap().column());
    assert_eq!(
        got,
        vec![
            Some("".into()),
            Some("a\u{ff}".into()),
            Some("b".into()),
            Some("b\0".into()),
            Some("b\0a".into()),
            None,
        ]
    );
}

/// A column longer than one 64 Ki-row morsel: the parallel sort and the
/// parallel-path gathers cross morsel seams without corrupting offsets.
#[test]
fn parallel_kernels_cross_morsel_boundaries() {
    let rows = 70_000; // > MORSEL_ROWS (64 Ki) and > PAR_MIN_ROWS
    let values: Vec<Option<String>> = (0..rows)
        .map(|i| match i % 11 {
            0 => None,
            1 => Some(String::new()),
            2 => Some(format!("x\0{}", i % 97)),
            3 => Some("東京".to_string()),
            _ => Some(format!("v{:05}", (i * 37) % 50_021)),
        })
        .collect();
    let df = DataFrame::new(vec![
        Series::new("s", col(&values)),
        Series::new("n", Column::from_i64((0..rows as i64).collect())),
    ])
    .unwrap();
    let options = SortOptions::single("s", true);
    let sequential = sort_values(&df, &options).unwrap();
    for threads in [2, 3] {
        let pool = WorkerPool::new(threads);
        let parallel = sort_values_par(&df, &options, &pool).unwrap();
        assert_eq!(parallel, sequential, "parallel sort at {threads} threads");
    }
    // A big builder append (the parallel CSV concat path) rebases
    // offsets across the seam correctly.
    let mut left = ColumnBuilder::new(DType::Utf8);
    let mut right = ColumnBuilder::new(DType::Utf8);
    for (i, v) in values.iter().enumerate() {
        let b = if i < rows / 2 { &mut left } else { &mut right };
        match v {
            None => b.push_null(),
            Some(s) => b.push_str(s),
        }
    }
    left.append(right);
    assert_rows(&left.finish(), &values, "builder append across seam");
}
