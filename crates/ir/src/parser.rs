//! Recursive-descent parser for PandaScript, with Python operator
//! precedence (bitwise `&`/`|` bind tighter than comparisons, which is why
//! pandas predicates are written `(df.a > 0) & (df.b < 1)`).

use crate::ast::{Ast, BinOpKind, CmpOpKind, Expr, FPiece, StmtId, StmtKind, Target, UnaryOpKind};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::SyntaxError;

/// Positional and keyword arguments of one call expression.
type CallArgs = (Vec<Expr>, Vec<(String, Expr)>);

/// Parse a full PandaScript module.
pub fn parse(source: &str) -> Result<Ast, SyntaxError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        ast: Ast::default(),
    };
    let module = parser.parse_block_until_eof()?;
    parser.ast.module = module;
    Ok(parser.ast)
}

/// Parse a single expression (used for f-string interpolations).
pub fn parse_expression(source: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        ast: Ast::default(),
    };
    let e = parser.parse_expr()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ast: Ast,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SyntaxError> {
        if self.peek() == &kind {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn error(&self, message: String) -> SyntaxError {
        SyntaxError {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, SyntaxError> {
        match self.bump() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(SyntaxError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected identifier, found {}", other.describe()),
            }),
        }
    }

    // -- statements -------------------------------------------------------

    fn parse_block_until_eof(&mut self) -> Result<Vec<StmtId>, SyntaxError> {
        let mut out = Vec::new();
        while self.peek() != &TokenKind::Eof {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    /// Parse an indented block after a `:` NEWLINE INDENT.
    fn parse_block(&mut self) -> Result<Vec<StmtId>, SyntaxError> {
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        self.expect(TokenKind::Indent)?;
        let mut out = Vec::new();
        while self.peek() != &TokenKind::Dedent && self.peek() != &TokenKind::Eof {
            out.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::Dedent)?;
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<StmtId, SyntaxError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Import => {
                self.bump();
                let module = self.dotted_name()?;
                let alias = if self.eat(&TokenKind::As) {
                    Some(self.ident()?)
                } else {
                    None
                };
                self.expect(TokenKind::Newline)?;
                Ok(self.ast.alloc(StmtKind::Import { module, alias }, line))
            }
            TokenKind::From => {
                self.bump();
                let module = self.dotted_name()?;
                self.expect(TokenKind::Import)?;
                let mut names = vec![self.import_name()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.import_name()?);
                }
                self.expect(TokenKind::Newline)?;
                Ok(self.ast.alloc(StmtKind::FromImport { module, names }, line))
            }
            TokenKind::If => {
                self.bump();
                self.parse_if(line)
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(TokenKind::In)?;
                let iter = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(self.ast.alloc(StmtKind::For { var, iter, body }, line))
            }
            TokenKind::Def | TokenKind::Return => Err(self.error(
                "function definitions are outside the analyzed PandaScript subset".into(),
            )),
            _ => {
                let expr = self.parse_expr()?;
                if self.eat(&TokenKind::Assign) {
                    let target = expr_to_target(expr).map_err(|m| self.error(m))?;
                    let value = self.parse_expr()?;
                    self.expect(TokenKind::Newline)?;
                    Ok(self.ast.alloc(StmtKind::Assign { target, value }, line))
                } else {
                    self.expect(TokenKind::Newline)?;
                    Ok(self.ast.alloc(StmtKind::Expr(expr), line))
                }
            }
        }
    }

    fn parse_if(&mut self, line: usize) -> Result<StmtId, SyntaxError> {
        let cond = self.parse_expr()?;
        let then = self.parse_block()?;
        let orelse = if self.peek() == &TokenKind::Elif {
            let elif_line = self.line();
            self.bump();
            vec![self.parse_if(elif_line)?]
        } else if self.eat(&TokenKind::Else) {
            self.parse_block()?
        } else {
            Vec::new()
        };
        Ok(self.ast.alloc(StmtKind::If { cond, then, orelse }, line))
    }

    fn dotted_name(&mut self) -> Result<String, SyntaxError> {
        let mut name = self.ident()?;
        while self.eat(&TokenKind::Dot) {
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    /// `print` and `len` are keywords nowhere, but they arrive as Ident.
    fn import_name(&mut self) -> Result<String, SyntaxError> {
        self.ident()
    }

    // -- expressions (Python precedence) ------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.parse_not()
    }

    fn parse_not(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat(&TokenKind::Not) {
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOpKind::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, SyntaxError> {
        let left = self.parse_bitor()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOpKind::Eq,
            TokenKind::Ne => CmpOpKind::Ne,
            TokenKind::Lt => CmpOpKind::Lt,
            TokenKind::Le => CmpOpKind::Le,
            TokenKind::Gt => CmpOpKind::Gt,
            TokenKind::Ge => CmpOpKind::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_bitor()?;
        Ok(Expr::Compare {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn parse_bitor(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.parse_bitand()?;
        while self.eat(&TokenKind::Pipe) {
            let right = self.parse_bitand()?;
            left = Expr::BinOp {
                left: Box::new(left),
                op: BinOpKind::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_bitand(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.parse_additive()?;
        while self.eat(&TokenKind::Amp) {
            let right = self.parse_additive()?;
            left = Expr::BinOp {
                left: Box::new(left),
                op: BinOpKind::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOpKind::Add,
                TokenKind::Minus => BinOpKind::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::BinOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOpKind::Mul,
                TokenKind::Slash => BinOpKind::Div,
                TokenKind::Percent => BinOpKind::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::BinOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat(&TokenKind::Tilde) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOpKind::Invert,
                operand: Box::new(operand),
            });
        }
        if self.eat(&TokenKind::Minus) {
            let operand = self.parse_unary()?;
            // Fold negative literals for cleaner ASTs.
            return Ok(match operand {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                other => Expr::Unary {
                    op: UnaryOpKind::Neg,
                    operand: Box::new(other),
                },
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, SyntaxError> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let attr = self.ident()?;
                    expr = Expr::Attribute {
                        value: Box::new(expr),
                        attr,
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let (args, kwargs) = self.parse_call_args()?;
                    expr = Expr::Call {
                        func: Box::new(expr),
                        args,
                        kwargs,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect(TokenKind::RBracket)?;
                    expr = Expr::Subscript {
                        value: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_call_args(&mut self) -> Result<CallArgs, SyntaxError> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok((args, kwargs));
        }
        loop {
            // kwarg? ident '=' ...
            if let TokenKind::Ident(name) = self.peek().clone() {
                if self.tokens[self.pos + 1].kind == TokenKind::Assign {
                    self.bump();
                    self.bump();
                    let value = self.parse_expr()?;
                    kwargs.push((name, value));
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    self.expect(TokenKind::RParen)?;
                    break;
                }
            }
            if !kwargs.is_empty() {
                return Err(self.error("positional argument after keyword argument".into()));
            }
            args.push(self.parse_expr()?);
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(TokenKind::RParen)?;
            break;
        }
        Ok((args, kwargs))
    }

    fn parse_primary(&mut self) -> Result<Expr, SyntaxError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Ident(name) => Ok(Expr::Name(name)),
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::FStr(raw) => parse_fstring(&raw, line),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::NoneKw => Ok(Expr::NoneLit),
            TokenKind::LParen => {
                let inner = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat(&TokenKind::Comma) {
                            if self.peek() == &TokenKind::RBracket {
                                break;
                            }
                            continue;
                        }
                        break;
                    }
                    self.expect(TokenKind::RBracket)?;
                }
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        let key = self.parse_expr()?;
                        self.expect(TokenKind::Colon)?;
                        let value = self.parse_expr()?;
                        items.push((key, value));
                        if self.eat(&TokenKind::Comma) {
                            if self.peek() == &TokenKind::RBrace {
                                break;
                            }
                            continue;
                        }
                        break;
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                Ok(Expr::Dict(items))
            }
            other => Err(SyntaxError {
                line,
                message: format!("unexpected {}", other.describe()),
            }),
        }
    }
}

/// Split an f-string body into text and `{expr}` pieces; `{{`/`}}` escape.
fn parse_fstring(raw: &str, line: usize) -> Result<Expr, SyntaxError> {
    let mut pieces = Vec::new();
    let mut text = String::new();
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                text.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                text.push('}');
            }
            '{' => {
                if !text.is_empty() {
                    pieces.push(FPiece::Text(std::mem::take(&mut text)));
                }
                let mut inner = String::new();
                let mut depth = 1;
                for c in chars.by_ref() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    inner.push(c);
                }
                if depth != 0 {
                    return Err(SyntaxError {
                        line,
                        message: "unbalanced braces in f-string".into(),
                    });
                }
                let expr = crate::parser::parse_expression(&format!("{inner}\n"))
                    .map_err(|e| SyntaxError {
                        line,
                        message: format!("in f-string expression {inner:?}: {}", e.message),
                    })?;
                pieces.push(FPiece::Expr(expr));
            }
            '}' => {
                return Err(SyntaxError {
                    line,
                    message: "single '}' in f-string".into(),
                })
            }
            other => text.push(other),
        }
    }
    if !text.is_empty() {
        pieces.push(FPiece::Text(text));
    }
    Ok(Expr::FString(pieces))
}

fn expr_to_target(expr: Expr) -> Result<Target, String> {
    match expr {
        Expr::Name(name) => Ok(Target::Name(name)),
        Expr::Subscript { value, index } => match *value {
            Expr::Name(obj) => Ok(Target::Subscript { obj, key: *index }),
            _ => Err("only simple names can be subscript-assigned".into()),
        },
        _ => Err("invalid assignment target".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top(src: &str) -> (Ast, Vec<StmtId>) {
        let ast = parse(src).unwrap();
        let m = ast.module.clone();
        (ast, m)
    }

    #[test]
    fn parse_figure3_program() {
        let src = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
df = df.groupby(['day'])['passenger_count'].sum()
print(df)
";
        let (ast, m) = top(src);
        assert_eq!(m.len(), 7);
        assert!(matches!(
            &ast.stmt(m[0]).kind,
            StmtKind::Import { module, alias: Some(a) }
                if module == "lazyfatpandas.pandas" && a == "pd"
        ));
        // df['day'] = ... is a subscript store
        assert!(matches!(
            &ast.stmt(m[4]).kind,
            StmtKind::Assign { target: Target::Subscript { obj, .. }, .. } if obj == "df"
        ));
    }

    #[test]
    fn kwargs_and_lists() {
        let (ast, m) = top("df = pd.read_csv('d.csv', usecols=['a', 'b'], nrows=10)\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Assign { value: Expr::Call { kwargs, args, .. }, .. } => {
                assert_eq!(args.len(), 1);
                assert_eq!(kwargs.len(), 2);
                assert_eq!(kwargs[0].0, "usecols");
                assert_eq!(
                    kwargs[0].1.as_str_list(),
                    Some(vec!["a".into(), "b".into()])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_pandas_style() {
        // (df.a > 0) & (df.b < 1) parses as And of comparisons
        let (ast, m) = top("m = (df.a > 0) & (df.b < 1)\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Assign { value: Expr::BinOp { op: BinOpKind::And, left, right }, .. } => {
                assert!(matches!(**left, Expr::Compare { .. }));
                assert!(matches!(**right, Expr::Compare { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // arithmetic precedence: 1 + 2 * 3
        let (ast, m) = top("x = 1 + 2 * 3\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Assign { value: Expr::BinOp { op: BinOpKind::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::BinOp { op: BinOpKind::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elif_else_nesting() {
        let src = "\
if x > 0:
    y = 1
elif x < 0:
    y = 2
else:
    y = 3
";
        let (ast, m) = top(src);
        assert_eq!(m.len(), 1);
        match &ast.stmt(m[0]).kind {
            StmtKind::If { then, orelse, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(orelse.len(), 1);
                assert!(matches!(ast.stmt(orelse[0]).kind, StmtKind::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_loop() {
        let (ast, m) = top("for f in files:\n    df = pd.read_csv(f)\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::For { var, body, .. } => {
                assert_eq!(var, "f");
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fstring_pieces() {
        let (ast, m) = top("print(f'Average fare: {avg_fare} done')\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Expr(Expr::Call { args, .. }) => match &args[0] {
                Expr::FString(pieces) => {
                    assert_eq!(pieces.len(), 3);
                    assert!(matches!(&pieces[0], FPiece::Text(t) if t == "Average fare: "));
                    assert!(
                        matches!(&pieces[1], FPiece::Expr(Expr::Name(n)) if n == "avg_fare")
                    );
                    assert!(matches!(&pieces[2], FPiece::Text(t) if t == " done"));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fstring_escapes_and_errors() {
        let (ast, m) = top("print(f'{{literal}} {x}')\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Expr(Expr::Call { args, .. }) => match &args[0] {
                Expr::FString(pieces) => {
                    assert!(matches!(&pieces[0], FPiece::Text(t) if t == "{literal} "));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("print(f'{unclosed')\n").is_err());
        assert!(parse("print(f'}bad')\n").is_err());
    }

    #[test]
    fn chained_methods_and_subscripts() {
        let (ast, m) = top("g = df.groupby(['day'])['count'].sum()\n");
        match &ast.stmt(m[0]).kind {
            StmtKind::Assign { value, .. } => {
                // Call(Attribute(Subscript(Call(Attribute(df, groupby))), sum))
                assert!(matches!(value, Expr::Call { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_have_lines() {
        let err = parse("x = 1\ny = (\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("def f():\n    return 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse("x = = 1\n").is_err());
        assert!(parse("f(a, b=1, c)\n").is_err());
    }

    #[test]
    fn negative_literals_fold() {
        let (ast, m) = top("x = -5\ny = -2.5\n");
        assert!(matches!(
            ast.stmt(m[0]).kind,
            StmtKind::Assign { value: Expr::Int(-5), .. }
        ));
        assert!(matches!(
            ast.stmt(m[1]).kind,
            StmtKind::Assign { value: Expr::Float(v), .. } if v == -2.5
        ));
    }
}
