//! The PandaScript executor for all six experimental configurations.

use crate::value::{FrameVal, Namespace, PyValue, SeriesVal};
use lafp_backends::{BackendKind, DaskEngine, DaskOp, EagerEngine, MemoryTracker};
use lafp_columnar::column::{ArithOp, CmpOp, DtField, StrOp};
use lafp_columnar::csv::CsvOptions;
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::join::JoinKind;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, ColumnarError, DataFrame, DType, HeapSize, Result, Scalar};
use lafp_core::{LaFP, LafpConfig, LazyFrame, PrintArg};
use lafp_expr::Expr as ColExpr;
use lafp_ir::ast::{Ast, BinOpKind, CmpOpKind, Expr, FPiece, StmtId, StmtKind, Target, UnaryOpKind};
use lafp_meta::MetaStore;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// Which execution configuration to run (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Plain eager backend (Pandas or Modin baselines).
    Eager(BackendKind),
    /// The manually-ported Dask baseline: lazy graphs, a separate
    /// `compute()` per print/plot/aggregate, no LaFP optimizations.
    PlainDask,
    /// The LaFP runtime (LPandas / LModin / LDask, per the config backend).
    Lafp,
}

/// What a program run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Captured print output, one entry per print.
    pub output: Vec<String>,
    /// Plot calls recorded by the matplotlib stub (rows plotted).
    pub plots: Vec<String>,
    /// Peak simulated memory (bytes).
    pub peak_memory: usize,
}

enum Engines {
    Eager(EagerEngine),
    Dask(DaskEngine),
    Lafp(LaFP),
}

/// The interpreter.
pub struct Interp {
    engines: Engines,
    tracker: Arc<MemoryTracker>,
    env: HashMap<String, PyValue>,
    output: Vec<String>,
    plots: Vec<String>,
    externals: HashSet<String>,
    pandas_alias: Option<String>,
    lazy_print: bool,
    use_metadata: bool,
    print_rows: usize,
    data_dir: PathBuf,
}

/// Extended runtime value for group-by chains.
enum Callee {
    Print,
    Len,
    PandasFn(String),
    ExternalFn(String, String),
    Method(PyValue, String),
}

impl Interp {
    /// Build an interpreter. The `config` supplies budget, threads, chunk
    /// size, optimizer flags (LaFP mode) and metadata usage.
    pub fn new(mode: ExecMode, config: LafpConfig, data_dir: PathBuf) -> Interp {
        let (engines, tracker, use_metadata) = match mode {
            ExecMode::Eager(kind) => {
                let tracker = MemoryTracker::with_budget(config.memory_budget);
                (
                    Engines::Eager(EagerEngine::new(kind, Arc::clone(&tracker), config.threads)),
                    tracker,
                    config.use_metadata,
                )
            }
            ExecMode::PlainDask => {
                let tracker = MemoryTracker::with_budget(config.memory_budget);
                (
                    Engines::Dask(DaskEngine::new(Arc::clone(&tracker), config.chunk_rows)),
                    tracker,
                    config.use_metadata,
                )
            }
            ExecMode::Lafp => {
                let use_meta = config.use_metadata;
                let session = LaFP::with_config(config);
                let tracker = Arc::clone(session.tracker());
                (Engines::Lafp(session), tracker, use_meta)
            }
        };
        Interp {
            engines,
            tracker,
            env: HashMap::new(),
            output: Vec::new(),
            plots: Vec::new(),
            externals: HashSet::new(),
            pandas_alias: None,
            lazy_print: false,
            use_metadata,
            print_rows: 5,
            data_dir,
        }
    }

    /// The memory tracker (peak readings drive Figure 15).
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Execute a module.
    pub fn run(&mut self, ast: &Ast) -> Result<RunOutcome> {
        let module = ast.module.clone();
        self.exec_block(ast, &module)?;
        // Safety net: un-flushed lazy prints at program end still print.
        if let Engines::Lafp(session) = &self.engines {
            session.flush()?;
            self.output.extend(session.take_output());
        }
        // Program end: release all held variables before reading the peak?
        // No — peak is a high-water mark; just read it.
        Ok(RunOutcome {
            output: std::mem::take(&mut self.output),
            plots: std::mem::take(&mut self.plots),
            peak_memory: self.tracker.peak(),
        })
    }

    fn exec_block(&mut self, ast: &Ast, stmts: &[StmtId]) -> Result<()> {
        for &id in stmts {
            self.exec_stmt(ast, id)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, ast: &Ast, id: StmtId) -> Result<()> {
        match &ast.stmt(id).kind {
            StmtKind::Import { module, alias } => {
                let name = alias.clone().unwrap_or_else(|| module.clone());
                if module == "lazyfatpandas.pandas" || module == "pandas" {
                    self.pandas_alias = Some(name.clone());
                } else if module != "lazyfatpandas" {
                    self.externals.insert(name.clone());
                }
                self.env.insert(name, PyValue::Module(module.clone()));
                Ok(())
            }
            StmtKind::FromImport { module, names } => {
                if module == "lazyfatpandas.func" && names.iter().any(|n| n == "print") {
                    self.lazy_print = true;
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(value)?;
                match target {
                    Target::Name(name) => {
                        self.env.insert(name.clone(), v);
                    }
                    Target::Subscript { obj, key } => {
                        let col = key.as_str_lit().ok_or_else(|| {
                            err("subscript assignment requires a string column key")
                        })?;
                        let frame = self.frame_var(obj)?;
                        let expr = self.value_to_col_expr(&v)?;
                        let updated = self.f_with_column(&frame, col, &expr)?;
                        self.env.insert(obj.clone(), PyValue::Frame(updated));
                    }
                }
                Ok(())
            }
            StmtKind::If { cond, then, orelse } => {
                let c = self.eval(cond)?;
                if c.truthy() {
                    self.exec_block(ast, &then.clone())
                } else {
                    self.exec_block(ast, &orelse.clone())
                }
            }
            StmtKind::For { var, iter, body } => {
                let items = match self.eval(iter)? {
                    PyValue::List(items) => items,
                    other => return Err(err(&format!("cannot iterate {other:?}"))),
                };
                for item in items {
                    self.env.insert(var.clone(), item);
                    self.exec_block(ast, &body.clone())?;
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<PyValue> {
        match e {
            Expr::Int(v) => Ok(PyValue::Scalar(Scalar::Int(*v))),
            Expr::Float(v) => Ok(PyValue::Scalar(Scalar::Float(*v))),
            Expr::Str(s) => Ok(PyValue::Scalar(Scalar::Str(s.clone()))),
            Expr::Bool(b) => Ok(PyValue::Scalar(Scalar::Bool(*b))),
            Expr::NoneLit => Ok(PyValue::None),
            Expr::Name(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| err(&format!("name {n:?} is not defined"))),
            Expr::List(items) => Ok(PyValue::List(
                items
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Expr::Dict(items) => Ok(PyValue::Dict(
                items
                    .iter()
                    .map(|(k, v)| Ok((self.eval(k)?, self.eval(v)?)))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Expr::FString(pieces) => {
                // Outside print: render eagerly.
                let mut out = String::new();
                for p in pieces {
                    match p {
                        FPiece::Text(t) => out.push_str(t),
                        FPiece::Expr(inner) => {
                            let v = self.eval(inner)?;
                            out.push_str(&self.render_eager(&v)?);
                        }
                    }
                }
                Ok(PyValue::Scalar(Scalar::Str(out)))
            }
            Expr::Attribute { value, attr } => {
                let recv = self.eval(value)?;
                self.eval_attribute(recv, attr)
            }
            Expr::Subscript { value, index } => {
                let recv = self.eval(value)?;
                self.eval_subscript(recv, index)
            }
            Expr::Call { func, args, kwargs } => self.eval_call(func, args, kwargs),
            Expr::Compare { left, op, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.eval_compare(l, *op, r)
            }
            Expr::BinOp { left, op, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.eval_binop(l, *op, r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match (op, v) {
                    (UnaryOpKind::Invert, PyValue::Series(s)) => Ok(PyValue::Series(SeriesVal {
                        frame: s.frame,
                        expr: !s.expr,
                    })),
                    (UnaryOpKind::Not, v) => Ok(PyValue::Scalar(Scalar::Bool(!v.truthy()))),
                    (UnaryOpKind::Neg, PyValue::Scalar(Scalar::Int(v))) => {
                        Ok(PyValue::Scalar(Scalar::Int(-v)))
                    }
                    (UnaryOpKind::Neg, PyValue::Scalar(Scalar::Float(v))) => {
                        Ok(PyValue::Scalar(Scalar::Float(-v)))
                    }
                    (op, v) => Err(err(&format!("unsupported unary {op:?} on {v:?}"))),
                }
            }
        }
    }

    fn eval_attribute(&mut self, recv: PyValue, attr: &str) -> Result<PyValue> {
        match recv {
            PyValue::Frame(frame) => {
                // df.col — column read (methods are resolved at Call sites).
                Ok(PyValue::Series(SeriesVal {
                    frame,
                    expr: ColExpr::col(attr),
                }))
            }
            PyValue::Series(series) => match attr {
                "dt" => Ok(PyValue::Accessor(series, Namespace::Dt)),
                "str" => Ok(PyValue::Accessor(series, Namespace::Str)),
                _ => Err(err(&format!("unknown series attribute {attr:?}"))),
            },
            PyValue::Accessor(series, Namespace::Dt) => {
                let field = DtField::parse(attr)
                    .ok_or_else(|| err(&format!("unknown dt accessor {attr:?}")))?;
                Ok(PyValue::Series(SeriesVal {
                    frame: series.frame,
                    expr: series.expr.dt(field),
                }))
            }
            PyValue::Accessor(_, Namespace::Str) => {
                Err(err("str accessor fields must be called (e.g. .str.lower())"))
            }
            other => Err(err(&format!("no attribute {attr:?} on {other:?}"))),
        }
    }

    fn eval_subscript(&mut self, recv: PyValue, index: &Expr) -> Result<PyValue> {
        match recv {
            PyValue::Frame(frame) => {
                if let Some(col) = index.as_str_lit() {
                    return Ok(PyValue::Series(SeriesVal {
                        frame,
                        expr: ColExpr::col(col),
                    }));
                }
                if let Some(cols) = index.as_str_list() {
                    return Ok(PyValue::Frame(self.f_select(&frame, cols)?));
                }
                // Boolean mask filter.
                let mask = self.eval(index)?;
                match mask {
                    PyValue::Series(s) => Ok(PyValue::Frame(self.f_filter(&frame, &s.expr)?)),
                    other => Err(err(&format!("unsupported frame subscript {other:?}"))),
                }
            }
            PyValue::GroupBy(frame, keys) => {
                let col = index
                    .as_str_lit()
                    .ok_or_else(|| err("groupby subscript must be a column name"))?;
                Ok(PyValue::GroupByCol(frame, keys, col.to_string()))
            }
            PyValue::List(items) => {
                let i = match self.eval(index)? {
                    PyValue::Scalar(Scalar::Int(i)) => i,
                    other => return Err(err(&format!("bad list index {other:?}"))),
                };
                items
                    .get(i as usize)
                    .cloned()
                    .ok_or_else(|| err("list index out of range"))
            }
            other => Err(err(&format!("cannot subscript {other:?}"))),
        }
    }

    fn eval_compare(&mut self, l: PyValue, op: CmpOpKind, r: PyValue) -> Result<PyValue> {
        let cop = map_cmp(op);
        match (l, r) {
            (PyValue::Series(s), rhs) => {
                let rhs_expr = self.value_to_col_expr(&rhs)?;
                Ok(PyValue::Series(SeriesVal {
                    frame: s.frame,
                    expr: s.expr.cmp(cop, rhs_expr),
                }))
            }
            (lhs, PyValue::Series(s)) => {
                let lhs_expr = self.value_to_col_expr(&lhs)?;
                Ok(PyValue::Series(SeriesVal {
                    frame: s.frame,
                    expr: lhs_expr.cmp(cop, s.expr),
                }))
            }
            (PyValue::Scalar(a), PyValue::Scalar(b)) => {
                let ord = a.cmp_values(&b);
                let res = match op {
                    CmpOpKind::Eq => ord.is_eq(),
                    CmpOpKind::Ne => !ord.is_eq(),
                    CmpOpKind::Lt => ord.is_lt(),
                    CmpOpKind::Le => ord.is_le(),
                    CmpOpKind::Gt => ord.is_gt(),
                    CmpOpKind::Ge => ord.is_ge(),
                };
                Ok(PyValue::Scalar(Scalar::Bool(res)))
            }
            (PyValue::LazyScalar(s), rhs) => {
                // Comparing a lazy scalar forces it (e.g. `if avg > 10:`).
                let v = s.compute(&[])?;
                self.eval_compare(PyValue::Scalar(v), op, rhs)
            }
            (lhs, PyValue::LazyScalar(s)) => {
                let v = s.compute(&[])?;
                self.eval_compare(lhs, op, PyValue::Scalar(v))
            }
            (l, r) => Err(err(&format!("unsupported comparison {l:?} vs {r:?}"))),
        }
    }

    fn eval_binop(&mut self, l: PyValue, op: BinOpKind, r: PyValue) -> Result<PyValue> {
        match op {
            BinOpKind::And | BinOpKind::Or => {
                let (PyValue::Series(a), PyValue::Series(b)) = (l, r) else {
                    return Err(err("&/| operands must be boolean series"));
                };
                let expr = if op == BinOpKind::And {
                    a.expr.and(b.expr)
                } else {
                    a.expr.or(b.expr)
                };
                Ok(PyValue::Series(SeriesVal {
                    frame: a.frame,
                    expr,
                }))
            }
            _ => {
                let aop = map_arith(op);
                match (l, r) {
                    // Arithmetic on a lazy scalar forces it.
                    (PyValue::LazyScalar(s), rhs) => {
                        let v = s.compute(&[])?;
                        self.eval_binop(PyValue::Scalar(v), op, rhs)
                    }
                    (lhs, PyValue::LazyScalar(s)) => {
                        let v = s.compute(&[])?;
                        self.eval_binop(lhs, op, PyValue::Scalar(v))
                    }
                    (PyValue::Series(s), rhs) => {
                        let rhs_expr = self.value_to_col_expr(&rhs)?;
                        Ok(PyValue::Series(SeriesVal {
                            frame: s.frame,
                            expr: s.expr.arith(aop, rhs_expr),
                        }))
                    }
                    (lhs, PyValue::Series(s)) => {
                        let lhs_expr = self.value_to_col_expr(&lhs)?;
                        Ok(PyValue::Series(SeriesVal {
                            frame: s.frame,
                            expr: lhs_expr.arith(aop, s.expr),
                        }))
                    }
                    (PyValue::Scalar(Scalar::Str(a)), PyValue::Scalar(Scalar::Str(b)))
                        if op == BinOpKind::Add =>
                    {
                        Ok(PyValue::Scalar(Scalar::Str(format!("{a}{b}"))))
                    }
                    (PyValue::Scalar(a), PyValue::Scalar(b)) => {
                        let (x, y) = (
                            a.as_f64().ok_or_else(|| err("non-numeric arithmetic"))?,
                            b.as_f64().ok_or_else(|| err("non-numeric arithmetic"))?,
                        );
                        let v = match aop {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                            ArithOp::Mod => x.rem_euclid(y),
                        };
                        let int_result = matches!(
                            (&a, &b, aop),
                            (Scalar::Int(_), Scalar::Int(_), ArithOp::Add)
                                | (Scalar::Int(_), Scalar::Int(_), ArithOp::Sub)
                                | (Scalar::Int(_), Scalar::Int(_), ArithOp::Mul)
                                | (Scalar::Int(_), Scalar::Int(_), ArithOp::Mod)
                        );
                        Ok(PyValue::Scalar(if int_result {
                            Scalar::Int(v as i64)
                        } else {
                            Scalar::Float(v)
                        }))
                    }
                    (l, r) => Err(err(&format!("unsupported arithmetic {l:?} {op:?} {r:?}"))),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    fn classify_callee(&mut self, func: &Expr) -> Result<Callee> {
        match func {
            Expr::Name(n) if n == "print" => Ok(Callee::Print),
            Expr::Name(n) if n == "len" => Ok(Callee::Len),
            Expr::Attribute { value, attr } => {
                if let Expr::Name(m) = value.as_ref() {
                    if Some(m) == self.pandas_alias.as_ref() {
                        return Ok(Callee::PandasFn(attr.clone()));
                    }
                    if self.externals.contains(m) {
                        return Ok(Callee::ExternalFn(m.clone(), attr.clone()));
                    }
                }
                let recv = self.eval(value)?;
                Ok(Callee::Method(recv, attr.clone()))
            }
            other => Err(err(&format!("cannot call {other:?}"))),
        }
    }

    fn eval_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<PyValue> {
        match self.classify_callee(func)? {
            Callee::Print => self.builtin_print(args),
            Callee::Len => {
                let v = self.eval(&args[0])?;
                match v {
                    PyValue::Frame(frame) => self.f_len(&frame),
                    PyValue::List(items) => Ok(PyValue::Scalar(Scalar::Int(items.len() as i64))),
                    PyValue::Scalar(Scalar::Str(s)) => {
                        Ok(PyValue::Scalar(Scalar::Int(s.chars().count() as i64)))
                    }
                    other => Err(err(&format!("len() of {other:?}"))),
                }
            }
            Callee::PandasFn(name) => match name.as_str() {
                "read_csv" => self.pandas_read_csv(args, kwargs),
                "analyze" => Ok(PyValue::None), // JIT bootstrap: no-op here
                "flush" => {
                    if let Engines::Lafp(session) = &self.engines {
                        session.flush()?;
                        self.output.extend(session.take_output());
                    }
                    Ok(PyValue::None)
                }
                other => Err(err(&format!("unsupported pandas function {other:?}"))),
            },
            Callee::ExternalFn(module, name) => self.external_call(&module, &name, args),
            Callee::Method(recv, method) => self.method_call(recv, &method, args, kwargs),
        }
    }

    fn builtin_print(&mut self, args: &[Expr]) -> Result<PyValue> {
        // Build print pieces; f-strings explode into text/value pieces so
        // the LaFP lazy print can defer the value slots (§3.3).
        let mut pieces: Vec<PyValue> = Vec::new();
        let mut texts: Vec<Option<String>> = Vec::new();
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                texts.push(Some(" ".into()));
                pieces.push(PyValue::None);
            }
            match a {
                Expr::FString(fp) => {
                    for p in fp {
                        match p {
                            FPiece::Text(t) => {
                                texts.push(Some(t.clone()));
                                pieces.push(PyValue::None);
                            }
                            FPiece::Expr(inner) => {
                                let v = self.eval(inner)?;
                                texts.push(None);
                                pieces.push(v);
                            }
                        }
                    }
                }
                other => {
                    let v = self.eval(other)?;
                    texts.push(None);
                    pieces.push(v);
                }
            }
        }
        if let Engines::Lafp(session) = &self.engines {
            let session = session.clone();
            let mut print_args = Vec::new();
            for (text, value) in texts.iter().zip(&pieces) {
                match text {
                    Some(t) => print_args.push(PrintArg::Text(t.clone())),
                    None => match value {
                        PyValue::Frame(FrameVal::Lafp(f)) => {
                            print_args.push(PrintArg::Frame(f.clone()))
                        }
                        PyValue::Series(s) => {
                            let f = self.series_to_frame(s)?;
                            match f {
                                FrameVal::Lafp(lf) => print_args.push(PrintArg::Frame(lf)),
                                _ => unreachable!("lafp mode"),
                            }
                        }
                        PyValue::LazyScalar(s) => print_args.push(PrintArg::Scalar(s.clone())),
                        other => print_args.push(PrintArg::Text(self.render_eager(other)?)),
                    },
                }
            }
            session.print(print_args);
            if !self.lazy_print {
                // No lazy-print override: print forces computation now.
                session.flush()?;
                self.output.extend(session.take_output());
            }
            return Ok(PyValue::None);
        }
        // Eager / plain-dask: render immediately.
        let mut line = String::new();
        for (text, value) in texts.iter().zip(&pieces) {
            match text {
                Some(t) => line.push_str(t),
                None => line.push_str(&self.render_eager(value)?),
            }
        }
        self.output.push(line);
        Ok(PyValue::None)
    }

    /// matplotlib-style stub: requires a *materialized* frame (forces
    /// computation in the lazy modes), records the call (§3.4).
    fn external_call(&mut self, module: &str, name: &str, args: &[Expr]) -> Result<PyValue> {
        let mut rows = Vec::new();
        for a in args {
            let v = self.eval(a)?;
            match v {
                PyValue::Frame(frame) => {
                    let (df, _res) = self.materialize(&frame)?;
                    rows.push(df.num_rows().to_string());
                }
                PyValue::Series(s) => {
                    let frame = self.series_to_frame(&s)?;
                    let (df, _res) = self.materialize(&frame)?;
                    rows.push(df.num_rows().to_string());
                }
                PyValue::Scalar(s) => rows.push(s.to_string()),
                PyValue::LazyScalar(s) => rows.push(s.compute(&[])?.to_string()),
                _ => {}
            }
        }
        self.plots.push(format!("{module}.{name}({})", rows.join(",")));
        Ok(PyValue::None)
    }

    fn pandas_read_csv(&mut self, args: &[Expr], kwargs: &[(String, Expr)]) -> Result<PyValue> {
        let path_arg = args
            .first()
            .ok_or_else(|| err("read_csv requires a path"))?;
        let path_str = match self.eval(path_arg)? {
            PyValue::Scalar(Scalar::Str(s)) => s,
            other => return Err(err(&format!("bad read_csv path {other:?}"))),
        };
        let path = if PathBuf::from(&path_str).is_relative() {
            self.data_dir.join(&path_str)
        } else {
            PathBuf::from(&path_str)
        };
        let mut options = CsvOptions::new();
        for (k, v) in kwargs {
            match k.as_str() {
                "usecols" => {
                    let cols = self
                        .eval(v)?
                        .as_string_list()
                        .ok_or_else(|| err("usecols must be a list of strings"))?;
                    options.usecols = Some(cols);
                }
                "parse_dates" => {
                    let cols = self
                        .eval(v)?
                        .as_string_list()
                        .ok_or_else(|| err("parse_dates must be a list of strings"))?;
                    options.parse_dates = cols;
                }
                "dtype" => {
                    if let PyValue::Dict(items) = self.eval(v)? {
                        for (k, v) in items {
                            if let (Some(col), Some(dt)) = (k.as_str(), v.as_str()) {
                                if let Some(dt) = DType::parse(dt) {
                                    options.dtypes.insert(col.to_string(), dt);
                                }
                            }
                        }
                    }
                }
                other => return Err(err(&format!("unsupported read_csv kwarg {other:?}"))),
            }
        }
        // Runtime metadata utilization (§3.6): known dtypes from the
        // metastore speed up parsing (no inference) in every mode.
        if self.use_metadata {
            if let Ok(Some(meta)) = MetaStore::new().load(&path) {
                for c in &meta.columns {
                    if !options.parse_dates.iter().any(|p| p == &c.name) {
                        options.dtypes.entry(c.name.clone()).or_insert(c.dtype);
                    }
                }
            }
        }
        match &mut self.engines {
            Engines::Eager(engine) => {
                let df = engine.read_csv(&path, &options)?;
                let reservation = self.tracker.charge(df.heap_size())?;
                Ok(PyValue::Frame(FrameVal::Eager(
                    Arc::new(df),
                    Rc::new(reservation),
                )))
            }
            Engines::Dask(engine) => {
                let node = engine.add(
                    DaskOp::ReadCsv {
                        path,
                        options,
                        limit: None,
                    },
                    vec![],
                );
                Ok(PyValue::Frame(FrameVal::DaskNode(node)))
            }
            Engines::Lafp(session) => {
                let lf = session.read_csv_opts(&path, options, &[]);
                Ok(PyValue::Frame(FrameVal::Lafp(lf)))
            }
        }
    }

    fn method_call(
        &mut self,
        recv: PyValue,
        method: &str,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<PyValue> {
        match recv {
            PyValue::Frame(frame) => self.frame_method(frame, method, args, kwargs),
            PyValue::Series(series) => self.series_method(series, method, args, kwargs),
            PyValue::Accessor(series, Namespace::Str) => {
                let op = match method {
                    "lower" => StrOp::Lower,
                    "upper" => StrOp::Upper,
                    "len" => StrOp::Len,
                    "contains" => {
                        let pat = self.eval_str_arg(args)?;
                        StrOp::Contains(pat)
                    }
                    "startswith" => {
                        let pat = self.eval_str_arg(args)?;
                        StrOp::StartsWith(pat)
                    }
                    other => return Err(err(&format!("unknown str method {other:?}"))),
                };
                Ok(PyValue::Series(SeriesVal {
                    frame: series.frame,
                    expr: series.expr.str_op(op),
                }))
            }
            PyValue::GroupByCol(frame, keys, col) => {
                let agg = AggKind::parse(method)
                    .ok_or_else(|| err(&format!("unknown aggregate {method:?}")))?;
                Ok(PyValue::Frame(self.f_groupby_agg(&frame, keys, col, agg)?))
            }
            other => Err(err(&format!("cannot call {method:?} on {other:?}"))),
        }
    }

    fn eval_str_arg(&mut self, args: &[Expr]) -> Result<String> {
        match self.eval(args.first().ok_or_else(|| err("missing argument"))?)? {
            PyValue::Scalar(Scalar::Str(s)) => Ok(s),
            other => Err(err(&format!("expected string argument, got {other:?}"))),
        }
    }

    fn frame_method(
        &mut self,
        frame: FrameVal,
        method: &str,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<PyValue> {
        match method {
            "head" | "tail" => {
                let n = match args.first() {
                    Some(a) => match self.eval(a)? {
                        PyValue::Scalar(Scalar::Int(v)) => v as usize,
                        other => return Err(err(&format!("bad head/tail arg {other:?}"))),
                    },
                    None => 5,
                };
                Ok(PyValue::Frame(self.f_head_tail(&frame, n, method == "head")?))
            }
            "fillna" => {
                let v = match self.eval(args.first().ok_or_else(|| err("fillna needs a value"))?)? {
                    PyValue::Scalar(s) => s,
                    other => return Err(err(&format!("bad fillna value {other:?}"))),
                };
                Ok(PyValue::Frame(self.f_fillna(&frame, &v)?))
            }
            "drop" => {
                let cols = self.kwarg_string_list(kwargs, "columns")?.ok_or_else(|| {
                    err("drop requires columns=[...]")
                })?;
                Ok(PyValue::Frame(self.f_drop(&frame, cols)?))
            }
            "rename" => {
                let mapping = self.kwarg_rename_map(kwargs)?;
                Ok(PyValue::Frame(self.f_rename(&frame, mapping)?))
            }
            "sort_values" => {
                let by = match args.first() {
                    Some(a) => self
                        .eval(a)?
                        .as_string_list()
                        .ok_or_else(|| err("sort_values by must be str or list"))?,
                    None => self
                        .kwarg_string_list(kwargs, "by")?
                        .ok_or_else(|| err("sort_values requires by"))?,
                };
                let ascending = match kwargs.iter().find(|(k, _)| k == "ascending") {
                    Some((_, v)) => match self.eval(v)? {
                        PyValue::Scalar(Scalar::Bool(b)) => b,
                        other => return Err(err(&format!("bad ascending {other:?}"))),
                    },
                    None => true,
                };
                let n = by.len();
                let options = SortOptions {
                    by,
                    ascending: vec![ascending; n],
                };
                Ok(PyValue::Frame(self.f_sort(&frame, options)?))
            }
            "drop_duplicates" => {
                let subset = self.kwarg_string_list(kwargs, "subset")?.unwrap_or_default();
                Ok(PyValue::Frame(self.f_dropdup(&frame, subset)?))
            }
            "describe" => Ok(PyValue::Frame(self.f_describe(&frame)?)),
            "copy" | "reset_index" => Ok(PyValue::Frame(frame)),
            "merge" => {
                let right = match self.eval(args.first().ok_or_else(|| err("merge needs rhs"))?)? {
                    PyValue::Frame(f) => f,
                    other => return Err(err(&format!("merge rhs {other:?}"))),
                };
                let on = self
                    .kwarg_string_list(kwargs, "on")?
                    .ok_or_else(|| err("merge requires on=[...]"))?;
                let how = match kwargs.iter().find(|(k, _)| k == "how") {
                    Some((_, v)) => {
                        let name = match self.eval(v)? {
                            PyValue::Scalar(Scalar::Str(s)) => s,
                            other => return Err(err(&format!("bad how {other:?}"))),
                        };
                        JoinKind::parse(&name)
                            .ok_or_else(|| err(&format!("unsupported how={name:?}")))?
                    }
                    None => JoinKind::Inner,
                };
                Ok(PyValue::Frame(self.f_merge(&frame, &right, on, how)?))
            }
            "groupby" => {
                let keys = match args.first() {
                    Some(a) => self
                        .eval(a)?
                        .as_string_list()
                        .ok_or_else(|| err("groupby keys must be strings"))?,
                    None => return Err(err("groupby requires keys")),
                };
                Ok(PyValue::GroupBy(frame, keys))
            }
            "compute" => {
                // §3.4 forced computation with §3.5 live_df.
                let live = self.live_frames_kwarg(kwargs)?;
                let (df, reservation) = match &frame {
                    FrameVal::Lafp(lf) => {
                        let refs: Vec<&LazyFrame> = live.iter().collect();
                        let df = lf.compute(&refs)?;
                        let reservation = self.tracker.charge(df.heap_size())?;
                        (Arc::new(df), Rc::new(reservation))
                    }
                    _ => self.materialize(&frame)?,
                };
                Ok(PyValue::Frame(FrameVal::Eager(df, reservation)))
            }
            agg if AggKind::parse(agg).is_some() => {
                // Whole-frame aggregate not in our subset; reduce per column
                // is handled on series. Treat as error to surface misuse.
                Err(err(&format!("frame-level aggregate {agg:?} unsupported")))
            }
            other => Err(err(&format!("unsupported dataframe method {other:?}"))),
        }
    }

    fn series_method(
        &mut self,
        series: SeriesVal,
        method: &str,
        args: &[Expr],
        _kwargs: &[(String, Expr)],
    ) -> Result<PyValue> {
        if let Some(agg) = AggKind::parse(method) {
            return self.f_reduce(&series, agg);
        }
        match method {
            "fillna" => {
                let v = match self.eval(args.first().ok_or_else(|| err("fillna needs value"))?)? {
                    PyValue::Scalar(s) => s,
                    other => return Err(err(&format!("bad fillna value {other:?}"))),
                };
                Ok(PyValue::Series(SeriesVal {
                    frame: series.frame,
                    expr: ColExpr::FillNa(Box::new(series.expr), v),
                }))
            }
            "astype" => {
                let name = self.eval_str_arg(args)?;
                let dt = DType::parse(&name)
                    .ok_or_else(|| err(&format!("unknown dtype {name:?}")))?;
                Ok(PyValue::Series(SeriesVal {
                    frame: series.frame,
                    expr: ColExpr::Cast(Box::new(series.expr), dt),
                }))
            }
            "round" => {
                let digits = match args.first() {
                    Some(a) => match self.eval(a)? {
                        PyValue::Scalar(Scalar::Int(v)) => v as i32,
                        other => return Err(err(&format!("bad round arg {other:?}"))),
                    },
                    None => 0,
                };
                Ok(PyValue::Series(SeriesVal {
                    frame: series.frame,
                    expr: ColExpr::Round(Box::new(series.expr), digits),
                }))
            }
            "abs" => Ok(PyValue::Series(SeriesVal {
                frame: series.frame,
                expr: ColExpr::Abs(Box::new(series.expr)),
            })),
            "isna" | "isnull" => Ok(PyValue::Series(SeriesVal {
                frame: series.frame,
                expr: ColExpr::IsNull(Box::new(series.expr)),
            })),
            "notna" | "notnull" => Ok(PyValue::Series(SeriesVal {
                frame: series.frame,
                expr: ColExpr::NotNull(Box::new(series.expr)),
            })),
            "compute" => {
                let frame = self.series_to_frame(&series)?;
                let (df, reservation) = self.materialize(&frame)?;
                Ok(PyValue::Frame(FrameVal::Eager(df, reservation)))
            }
            other => Err(err(&format!("unsupported series method {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Frame operations per mode
    // ------------------------------------------------------------------

    fn frame_var(&self, name: &str) -> Result<FrameVal> {
        match self.env.get(name) {
            Some(PyValue::Frame(f)) => Ok(f.clone()),
            other => Err(err(&format!("{name:?} is not a dataframe ({other:?})"))),
        }
    }

    fn value_to_col_expr(&self, v: &PyValue) -> Result<ColExpr> {
        match v {
            PyValue::Series(s) => Ok(s.expr.clone()),
            PyValue::Scalar(s) => Ok(ColExpr::Lit(s.clone())),
            PyValue::None => Ok(ColExpr::Lit(Scalar::Null)),
            other => Err(err(&format!("cannot use {other:?} as a column expression"))),
        }
    }

    fn kwarg_string_list(
        &mut self,
        kwargs: &[(String, Expr)],
        name: &str,
    ) -> Result<Option<Vec<String>>> {
        match kwargs.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                let value = self.eval(v)?;
                value
                    .as_string_list()
                    .map(Some)
                    .ok_or_else(|| err(&format!("{name} must be a string list")))
            }
            None => Ok(None),
        }
    }

    fn kwarg_rename_map(&mut self, kwargs: &[(String, Expr)]) -> Result<Vec<(String, String)>> {
        match kwargs.iter().find(|(k, _)| k == "columns") {
            Some((_, v)) => match self.eval(v)? {
                PyValue::Dict(items) => items
                    .into_iter()
                    .map(|(k, v)| match (k.as_str(), v.as_str()) {
                        (Some(a), Some(b)) => Ok((a.to_string(), b.to_string())),
                        _ => Err(err("rename mapping must be string: string")),
                    })
                    .collect(),
                other => Err(err(&format!("bad rename columns {other:?}"))),
            },
            None => Err(err("rename requires columns={...}")),
        }
    }

    fn live_frames_kwarg(&mut self, kwargs: &[(String, Expr)]) -> Result<Vec<LazyFrame>> {
        let mut out = Vec::new();
        if let Some((_, v)) = kwargs.iter().find(|(k, _)| k == "live_df") {
            if let PyValue::List(items) = self.eval(v)? {
                for item in items {
                    if let PyValue::Frame(FrameVal::Lafp(lf)) = item {
                        out.push(lf);
                    }
                }
            }
        }
        Ok(out)
    }

    fn dask_engine(&mut self) -> &mut DaskEngine {
        match &mut self.engines {
            Engines::Dask(e) => e,
            _ => unreachable!("dask engine access outside PlainDask mode"),
        }
    }

    fn f_filter(&mut self, frame: &FrameVal, predicate: &ColExpr) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().filter(df, predicate)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self
                    .dask_engine()
                    .add(DaskOp::Filter(predicate.clone()), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.filter(predicate.clone()))),
        }
    }

    fn f_with_column(&mut self, frame: &FrameVal, name: &str, expr: &ColExpr) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().with_column(df, name, expr)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self
                    .dask_engine()
                    .add(DaskOp::WithColumn(name.into(), expr.clone()), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.with_column(name, expr.clone()))),
        }
    }

    fn f_select(&mut self, frame: &FrameVal, cols: Vec<String>) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().select(df, &cols)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::Select(cols), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.select(cols))),
        }
    }

    fn f_drop(&mut self, frame: &FrameVal, cols: Vec<String>) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().drop(df, &cols)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::DropColumns(cols), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.drop(cols))),
        }
    }

    fn f_rename(&mut self, frame: &FrameVal, mapping: Vec<(String, String)>) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().rename(df, &mapping)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::Rename(mapping), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.rename(mapping))),
        }
    }

    fn f_fillna(&mut self, frame: &FrameVal, value: &Scalar) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().fillna(df, value)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self
                    .dask_engine()
                    .add(DaskOp::FillNa(value.clone()), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.fillna(value.clone()))),
        }
    }

    fn f_head_tail(&mut self, frame: &FrameVal, n: usize, head: bool) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = if head { df.head(n) } else { df.tail(n) };
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                if head {
                    let node = self.dask_engine().add(DaskOp::Head(n), vec![*id]);
                    Ok(FrameVal::DaskNode(node))
                } else {
                    // Manual Dask ports materialize for tail (no dask tail).
                    let (df, _r) = self.dask_engine().gather(*id)?;
                    let out = df.tail(n);
                    let node = self
                        .dask_engine()
                        .add(DaskOp::FromFrame(Arc::new(out)), vec![]);
                    Ok(FrameVal::DaskNode(node))
                }
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(if head { lf.head(n) } else { lf.tail(n) })),
        }
    }

    fn f_sort(&mut self, frame: &FrameVal, options: SortOptions) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().sort_values(df, &options)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::Sort(options), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.sort_values(options))),
        }
    }

    fn f_dropdup(&mut self, frame: &FrameVal, subset: Vec<String>) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().drop_duplicates(df, &subset)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self
                    .dask_engine()
                    .add(DaskOp::DropDuplicates(subset), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.drop_duplicates(subset))),
        }
    }

    fn f_describe(&mut self, frame: &FrameVal) -> Result<FrameVal> {
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().describe(df)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                // Manual port: gather, describe in pandas, scatter back.
                let (df, _r) = self.dask_engine().gather(*id)?;
                let out = lafp_columnar::describe::describe(&df)?;
                let node = self
                    .dask_engine()
                    .add(DaskOp::FromFrame(Arc::new(out)), vec![]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.describe())),
        }
    }

    fn f_merge(
        &mut self,
        left: &FrameVal,
        right: &FrameVal,
        on: Vec<String>,
        how: JoinKind,
    ) -> Result<FrameVal> {
        match (left, right) {
            (FrameVal::Eager(l, _), FrameVal::Eager(r, _)) => {
                let out = self.eager_engine().merge(l, r, &on, how)?;
                self.charge_eager(out)
            }
            (FrameVal::DaskNode(l), FrameVal::DaskNode(r)) => {
                let node = self
                    .dask_engine()
                    .add(DaskOp::Merge { on, how }, vec![*l, *r]);
                Ok(FrameVal::DaskNode(node))
            }
            (FrameVal::Lafp(l), FrameVal::Lafp(r)) => {
                Ok(FrameVal::Lafp(l.merge(r, on, how)))
            }
            (l, r) => {
                // Mixed (e.g. computed frame merged with lazy): lift the
                // eager side into the lazy engine.
                match (l, r) {
                    (FrameVal::Lafp(l), FrameVal::Eager(df, _)) => {
                        let session = self.lafp_session()?;
                        let lifted = session.from_frame((**df).clone());
                        Ok(FrameVal::Lafp(l.merge(&lifted, on, how)))
                    }
                    (FrameVal::Eager(df, _), FrameVal::Lafp(r)) => {
                        let session = self.lafp_session()?;
                        let lifted = session.from_frame((**df).clone());
                        Ok(FrameVal::Lafp(lifted.merge(r, on, how)))
                    }
                    (FrameVal::DaskNode(l), FrameVal::Eager(df, _)) => {
                        let node = self
                            .dask_engine()
                            .add(DaskOp::FromFrame(Arc::clone(df)), vec![]);
                        let l = *l;
                        let m = self
                            .dask_engine()
                            .add(DaskOp::Merge { on, how }, vec![l, node]);
                        Ok(FrameVal::DaskNode(m))
                    }
                    _ => Err(err("unsupported mixed-mode merge")),
                }
            }
        }
    }

    fn f_groupby_agg(
        &mut self,
        frame: &FrameVal,
        keys: Vec<String>,
        value: String,
        agg: AggKind,
    ) -> Result<FrameVal> {
        let spec = GroupBySpec {
            keys,
            value,
            agg,
        };
        match frame {
            FrameVal::Eager(df, _) => {
                let out = self.eager_engine().group_by(df, &spec)?;
                self.charge_eager(out)
            }
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::GroupByAgg(spec), vec![*id]);
                Ok(FrameVal::DaskNode(node))
            }
            FrameVal::Lafp(lf) => Ok(FrameVal::Lafp(lf.groupby_agg(spec.keys, spec.value, spec.agg))),
        }
    }

    fn f_reduce(&mut self, series: &SeriesVal, agg: AggKind) -> Result<PyValue> {
        // Named column: reduce directly; compound expression: stage a
        // temporary computed column first.
        let (frame, column) = match &series.expr {
            ColExpr::Col(c) => (series.frame.clone(), c.clone()),
            compound => {
                let staged = self.f_with_column(&series.frame, "__lafp_agg", compound)?;
                (staged, "__lafp_agg".to_string())
            }
        };
        match &frame {
            FrameVal::Eager(df, _) => Ok(PyValue::Scalar(
                self.eager_engine().reduce(df, &column, agg)?,
            )),
            FrameVal::DaskNode(id) => {
                // Plain Dask: an aggregate forces its own compute pass.
                let node = self
                    .dask_engine()
                    .add(DaskOp::Reduce { column, agg }, vec![*id]);
                let (v, _r) = self.dask_engine().compute(node)?;
                Ok(PyValue::Scalar(v.into_scalar()?))
            }
            FrameVal::Lafp(lf) => Ok(PyValue::LazyScalar(lf.reduce(column, agg))),
        }
    }

    fn f_len(&mut self, frame: &FrameVal) -> Result<PyValue> {
        match frame {
            FrameVal::Eager(df, _) => Ok(PyValue::Scalar(Scalar::Int(df.num_rows() as i64))),
            FrameVal::DaskNode(id) => {
                let node = self.dask_engine().add(DaskOp::Len, vec![*id]);
                let (v, _r) = self.dask_engine().compute(node)?;
                Ok(PyValue::Scalar(v.into_scalar()?))
            }
            FrameVal::Lafp(lf) => Ok(PyValue::LazyScalar(lf.len())),
        }
    }

    /// Materialize any frame representation into a concrete `DataFrame`.
    fn materialize(&mut self, frame: &FrameVal) -> Result<(Arc<DataFrame>, Rc<MemoryReservationAlias>)> {
        match frame {
            FrameVal::Eager(df, r) => Ok((Arc::clone(df), Rc::clone(r))),
            FrameVal::DaskNode(id) => {
                let (df, reservation) = self.dask_engine().gather(*id)?;
                Ok((Arc::new(df), Rc::new(reservation)))
            }
            FrameVal::Lafp(lf) => {
                let df = lf.compute(&[])?;
                let reservation = self.tracker.charge(df.heap_size())?;
                Ok((Arc::new(df), Rc::new(reservation)))
            }
        }
    }

    /// A series as a single-column frame (for printing / plotting).
    fn series_to_frame(&mut self, series: &SeriesVal) -> Result<FrameVal> {
        let named = match &series.expr {
            ColExpr::Col(c) => c.clone(),
            _ => "value".to_string(),
        };
        let staged = self.f_with_column(&series.frame, &named, &series.expr)?;
        self.f_select(&staged, vec![named])
    }

    fn eager_engine(&self) -> EagerEngine {
        match &self.engines {
            Engines::Eager(e) => e.clone(),
            _ => self.eager_fallback(),
        }
    }

    fn eager_fallback(&self) -> EagerEngine {
        EagerEngine::new(BackendKind::Pandas, Arc::clone(&self.tracker), 1)
    }

    fn lafp_session(&self) -> Result<LaFP> {
        match &self.engines {
            Engines::Lafp(s) => Ok(s.clone()),
            _ => Err(err("LaFP session required")),
        }
    }

    fn charge_eager(&self, df: DataFrame) -> Result<FrameVal> {
        let reservation = self.tracker.charge(df.heap_size())?;
        Ok(FrameVal::Eager(Arc::new(df), Rc::new(reservation)))
    }

    fn render_eager(&mut self, v: &PyValue) -> Result<String> {
        Ok(match v {
            PyValue::Scalar(s) => s.to_string(),
            PyValue::LazyScalar(s) => s.compute(&[])?.to_string(),
            PyValue::Frame(frame) => {
                let (df, _r) = self.materialize(frame)?;
                df.to_display_string(self.print_rows)
            }
            PyValue::Series(s) => {
                let frame = self.series_to_frame(s)?;
                let (df, _r) = self.materialize(&frame)?;
                df.to_display_string(self.print_rows)
            }
            PyValue::List(items) => {
                let mut parts = Vec::new();
                for i in items {
                    parts.push(self.render_eager(i)?);
                }
                format!("[{}]", parts.join(", "))
            }
            PyValue::None => "None".into(),
            other => format!("{other:?}"),
        })
    }
}

/// `MemoryReservation` alias (the interp stores reservations in `Rc`).
pub type MemoryReservationAlias = lafp_backends::MemoryReservation;

fn map_cmp(op: CmpOpKind) -> CmpOp {
    match op {
        CmpOpKind::Eq => CmpOp::Eq,
        CmpOpKind::Ne => CmpOp::Ne,
        CmpOpKind::Lt => CmpOp::Lt,
        CmpOpKind::Le => CmpOp::Le,
        CmpOpKind::Gt => CmpOp::Gt,
        CmpOpKind::Ge => CmpOp::Ge,
    }
}

fn map_arith(op: BinOpKind) -> ArithOp {
    match op {
        BinOpKind::Add => ArithOp::Add,
        BinOpKind::Sub => ArithOp::Sub,
        BinOpKind::Mul => ArithOp::Mul,
        BinOpKind::Div => ArithOp::Div,
        BinOpKind::Mod => ArithOp::Mod,
        BinOpKind::And | BinOpKind::Or => unreachable!("handled by eval_binop"),
    }
}

fn err(message: &str) -> ColumnarError {
    ColumnarError::InvalidArgument(message.to_string())
}
