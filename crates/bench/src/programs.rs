//! The ten benchmark programs (§5.1), written in PandaScript exactly as a
//! Pandas user would write them — including the two-line LaFP change
//! (`import lazyfatpandas.pandas as pd` + `pd.analyze()`), which the plain
//! baselines simply treat as importing pandas.

/// A benchmark program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Short name (the paper's x-axis labels).
    pub name: &'static str,
    /// PandaScript source.
    pub source: &'static str,
    /// Whether the program's final outputs depend on row order beyond
    /// sorted/aggregated frames (none of ours do — §5.2's allowance).
    pub order_sensitive: bool,
}

/// Program names in the paper's order.
pub const PROGRAM_NAMES: [&str; 10] = [
    "ais", "cty", "dso", "emp", "env", "fdb", "mov", "nyt", "stu", "zip",
];

/// Look up a program by name.
pub fn program(name: &str) -> Option<Program> {
    let source = match name {
        "ais" => AIS,
        "cty" => CTY,
        "dso" => DSO,
        "emp" => EMP,
        "env" => ENV,
        "fdb" => FDB,
        "mov" => MOV,
        "nyt" => NYT,
        "stu" => STU,
        "zip" => ZIP,
        _ => return None,
    };
    Some(Program {
        name: PROGRAM_NAMES.iter().find(|n| **n == name)?,
        source,
        order_sensitive: false,
    })
}

/// All programs in paper order.
pub fn all() -> Vec<Program> {
    PROGRAM_NAMES
        .iter()
        .map(|n| program(n).expect("known name"))
        .collect()
}

/// Figure 3's taxi workload: filter bad rows, add a weekday feature,
/// aggregate passengers per day. Column selection keeps 3 of 22 columns.
const NYT: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('nyt.csv', parse_dates=['tpep_pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
g = df.groupby(['day'])['passenger_count'].sum()
print(g)
";

/// Vessel positions: moving vessels' mean speed per type (3 of 18 cols).
const AIS: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('ais.csv')
df = df[df.sog > 0.5]
g = df.groupby(['vessel_type'])['sog'].mean()
print(g)
n = len(df)
print(f'moving positions: {n}')
";

/// Cities joined with their countries; big-city population by continent.
const CTY: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
cities = pd.read_csv('cty.csv')
countries = pd.read_csv('cty_countries.csv')
m = cities.merge(countries, on=['country_code'], how='inner')
m = m[m.population > 100000]
g = m.groupby(['continent'])['population'].sum()
print(g)
";

/// Data-science exploration: peek, summarize, rank. Projections are
/// explicit so the informative outputs (`head`, `describe`) are identical
/// with and without column selection; the §3.1 heuristic is exercised by
/// the analysis unit tests instead.
const DSO: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('dso.csv')
peek = df[['v1', 'v2', 'v3', 'category']]
print(peek.head())
print(peek.describe())
top = df.sort_values(['v1'], ascending=False)
sel = top[['id', 'v1', 'v5']]
print(sel.head(10))
avg = df.v5.mean()
print(f'v5 mean: {avg}')
";

/// Employees: per-department salary report, then a plot of the whole
/// frame — the external call that materializes a large dataframe and runs
/// out of memory on every backend at 12.6 GB (§5.2).
const EMP: &str = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
df = pd.read_csv('emp.csv')
g = df.groupby(['dept'])['salary'].mean()
print(g)
plt.plot(df)
plt.savefig('emp.png')
hi = df.salary.max()
print(f'max salary: {hi}')
";

/// Sensor readings: many interleaved prints (the lazy-print showcase).
const ENV: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('env.csv')
df = df[df.pm25 >= 0.0]
m1 = df.pm25.mean()
print(f'pm25 mean: {m1}')
m2 = df.pm10.mean()
print(f'pm10 mean: {m2}')
m3 = df.no2.mean()
print(f'no2 mean: {m3}')
m4 = df.o3.mean()
print(f'o3 mean: {m4}')
g = df.groupby(['station'])['pm25'].max()
print(g.head(5))
t = df.temp.max()
print(f'max temp: {t}')
";

/// Startup funding: clean nulls, integer-ize, aggregate by state.
/// Low-cardinality read-only strings (category, state, status) are the
/// §3.6 category-dtype candidates.
const FDB: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('fdb.csv')
df['funding_total'] = df.funding_total.fillna(0.0)
df = df[df.founded_year >= 2000]
g = df.groupby(['state'])['funding_total'].sum()
print(g)
ops = df[df.status == 'operating']
n = len(ops)
print(f'operating startups: {n}')
";

/// Movie ratings joined with titles; two aggregates over the shared
/// merged frame with a plot in between (common computation reuse, §3.5).
const MOV: &str = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
ratings = pd.read_csv('mov.csv')
movies = pd.read_csv('mov_titles.csv')
m = ratings.merge(movies, on=['movie_id'], how='inner')
g1 = m.groupby(['genre'])['rating'].mean()
plt.plot(g1)
g2 = m.groupby(['genre'])['rating'].count()
print(g2)
avg = m.rating.mean()
print(f'overall rating: {avg}')
";

/// Students: a filtered, feature-extended frame reused by four plots and
/// a final report — the caching ablation workload (persist on/off flips
/// the runtime by ~an order of magnitude, §5.3/§5.4).
const STU: &str = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
df = pd.read_csv('stu.csv')
df = df[df.attendance > 70.0]
df['stem'] = (df.math + df.science) / 2.0
g1 = df.groupby(['school'])['math'].mean()
plt.plot(g1)
g2 = df.groupby(['school'])['reading'].mean()
plt.plot(g2)
g3 = df.groupby(['school'])['science'].mean()
plt.plot(g3)
g4 = df.groupby(['grade_level'])['stem'].mean()
plt.plot(g4)
top = df.groupby(['school'])['stem'].max()
print(top)
avg = df.stem.mean()
print(f'district stem average: {avg}')
";

/// Zip census: richest high-population zips (pushdown + sort + head).
const ZIP: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('zip.csv')
df['density'] = df.population / df.land_area
df = df[df.population > 5000]
top = df.sort_values(['median_income'], ascending=False)
report = top[['zip', 'state', 'median_income', 'density']]
print(report.head(10))
n = len(df)
print(f'qualifying zips: {n}')
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_programs_parse() {
        let programs = all();
        assert_eq!(programs.len(), 10);
        for p in &programs {
            lafp_ir::parser::parse(p.source)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn all_ten_programs_rewrite() {
        for p in all() {
            let analyzed =
                lafp_rewrite::analyze(p.source, &lafp_rewrite::RewriteOptions::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            // Every program prints something, so lazy print always fires.
            assert!(analyzed.report.lazy_print, "{}", p.name);
            // Re-parseable optimized source.
            lafp_ir::parser::parse(&analyzed.optimized_source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", p.name, analyzed.optimized_source));
        }
    }

    #[test]
    fn column_selection_fires_on_projection_friendly_programs() {
        for name in ["nyt", "ais", "env", "stu", "zip"] {
            let p = program(name).unwrap();
            let analyzed =
                lafp_rewrite::analyze(p.source, &lafp_rewrite::RewriteOptions::default())
                    .unwrap();
            assert!(
                !analyzed.report.usecols.is_empty(),
                "{name} should get usecols"
            );
        }
    }

    #[test]
    fn forced_compute_fires_on_plotting_programs() {
        for name in ["emp", "mov", "stu"] {
            let p = program(name).unwrap();
            let analyzed =
                lafp_rewrite::analyze(p.source, &lafp_rewrite::RewriteOptions::default())
                    .unwrap();
            assert!(
                !analyzed.report.forced_computes.is_empty(),
                "{name} should get forced computes"
            );
        }
    }
}
