//! Property-based tests over the core data structures and invariants.

use lafp::columnar::column::{ArithOp, CmpOp, Column};
use lafp::columnar::{Bitmap, DataFrame, Scalar, Series};
use lafp::expr::Expr;
use proptest::prelude::*;

proptest! {
    /// Filter then count == count of mask bits; filtering preserves order.
    #[test]
    fn filter_preserves_selected_rows(values in prop::collection::vec(-1000i64..1000, 0..200)) {
        let col = Column::from_i64(values.clone());
        let df = DataFrame::new(vec![Series::new("v", col)]).unwrap();
        let pred = Expr::col("v").gt(Expr::lit_int(0));
        let mask = pred.evaluate_mask(&df).unwrap();
        let out = df.filter(&mask).unwrap();
        let expected: Vec<i64> = values.iter().copied().filter(|v| *v > 0).collect();
        prop_assert_eq!(out.num_rows(), expected.len());
        for (i, e) in expected.iter().enumerate() {
            prop_assert_eq!(out.column("v").unwrap().get(i), Scalar::Int(*e));
        }
    }

    /// Bitmap boolean algebra obeys De Morgan.
    #[test]
    fn bitmap_de_morgan(bits_a in prop::collection::vec(any::<bool>(), 1..256),
                        bits_b in prop::collection::vec(any::<bool>(), 1..256)) {
        let n = bits_a.len().min(bits_b.len());
        let a = Bitmap::from_bools(&bits_a[..n]);
        let b = Bitmap::from_bools(&bits_b[..n]);
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    /// Sum of a split equals sum of the whole (the streaming-aggregation
    /// invariant the Dask engine depends on).
    #[test]
    fn split_sum_equals_whole(values in prop::collection::vec(-1e6f64..1e6, 1..300),
                              split in 0usize..300) {
        let col = Column::from_f64(values.clone());
        let df = DataFrame::new(vec![Series::new("v", col)]).unwrap();
        let split = split.min(values.len());
        let left = df.slice(0, split);
        let right = df.slice(split, values.len() - split);
        let whole = match df.column("v").unwrap().column().sum() {
            Scalar::Float(x) => x,
            _ => unreachable!(),
        };
        let l = left.column("v").unwrap().column().sum().as_f64().unwrap_or(0.0);
        let r = right.column("v").unwrap().column().sum().as_f64().unwrap_or(0.0);
        prop_assert!((whole - (l + r)).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    /// Sorting is a permutation and is ordered.
    #[test]
    fn sort_is_ordered_permutation(values in prop::collection::vec(-1000i64..1000, 0..200)) {
        use lafp::columnar::sort::{sort_values, SortOptions};
        let df = DataFrame::new(vec![Series::new("v", Column::from_i64(values.clone()))]).unwrap();
        let sorted = sort_values(&df, &SortOptions::single("v", true)).unwrap();
        prop_assert_eq!(sorted.num_rows(), values.len());
        let mut expected = values.clone();
        expected.sort_unstable();
        for (i, e) in expected.iter().enumerate() {
            prop_assert_eq!(sorted.column("v").unwrap().get(i), Scalar::Int(*e));
        }
    }

    /// Comparison followed by inversion partitions all non-null rows.
    #[test]
    fn mask_and_inverse_partition(values in prop::collection::vec(-100i64..100, 0..200)) {
        let df = DataFrame::new(vec![Series::new("v", Column::from_i64(values.clone()))]).unwrap();
        let pred = Expr::col("v").cmp(CmpOp::Ge, Expr::lit_int(0));
        let mask = pred.evaluate_mask(&df).unwrap();
        let inv = mask.not();
        prop_assert_eq!(mask.count_set() + inv.count_set(), values.len());
    }

    /// Arithmetic expressions evaluate like scalar arithmetic, row-wise.
    #[test]
    fn arith_matches_scalar_semantics(a in -1000i64..1000, b in 1i64..1000,
                                      rows in 1usize..50) {
        let df = DataFrame::new(vec![
            Series::new("x", Column::from_i64(vec![a; rows])),
        ]).unwrap();
        let e = Expr::col("x").arith(ArithOp::Add, Expr::lit_int(b));
        let out = e.evaluate(&df).unwrap();
        prop_assert_eq!(out.get(0), Scalar::Int(a + b));
        let e = Expr::col("x").arith(ArithOp::Div, Expr::lit_int(b));
        let out = e.evaluate(&df).unwrap();
        prop_assert_eq!(out.get(0), Scalar::Float(a as f64 / b as f64));
    }

    /// CSV write/read round-trips frames (modulo dtype-preserving values).
    #[test]
    fn csv_roundtrip(ints in prop::collection::vec(-1000i64..1000, 1..60),
                     words in prop::collection::vec("[a-z]{1,8}", 1..60)) {
        use lafp::columnar::csv::{read_csv, write_csv, CsvOptions};
        let n = ints.len().min(words.len());
        let df = DataFrame::new(vec![
            Series::new("n", Column::from_i64(ints[..n].to_vec())),
            Series::new("w", Column::from_strings(words[..n].to_vec())),
        ]).unwrap();
        let dir = std::env::temp_dir().join("lafp-proptests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("p{}.csv", rand_suffix()));
        write_csv(&df, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::new()).unwrap();
        prop_assert_eq!(back, df);
        std::fs::remove_file(&path).ok();
    }
}

fn rand_suffix() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos()
}
