//! Deterministic case generation: seeded bytes, plan-driven frame
//! construction, engine-side encoding, and the CSV routing helpers.
//!
//! Everything here is a pure function of the trace (plus the batch
//! seed), so a replayed hex string rebuilds byte-identical inputs. The
//! oracle and the engine share [`build_plain`] — the engine's copy then
//! goes through [`encode_for_engine`] (or a CSV file) so the two sides
//! hold logically identical frames in different representations.

use super::trace::{ColKind, ColPlan, Enc, FramePlan, MAX_AUX_COLS, MAX_AUX_ROWS, MAX_COLS, MAX_OPS, NUM_OPCODES};
use crate::reference::force_rle;
use lafp_columnar::column::ColumnBuilder;
use lafp_columnar::csv::quote_field;
use lafp_columnar::encoding::dict_encode;
use lafp_columnar::{Column, DType, DataFrame, Scalar, Series};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cardinality buckets indexed by [`ColPlan::card`]: constants, coin
/// flips, small groups, a groupby-sized key space, and effectively
/// unique values.
pub const CARDS: [u64; 6] = [1, 2, 5, 30, 1000, 100_000];

/// SplitMix64 — the deterministic stream behind both byte generation
/// and column values. Small, seedable, and stable across platforms.
pub struct SplitMix(u64);

impl SplitMix {
    /// Stream seeded from `seed`.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn u8(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }
}

/// The canonical bytes for case `case` of batch `seed`. Row counts are
/// bucketed: mostly small frames (fast), a medium band, and a rare
/// >64 Ki band that crosses the morsel seam.
pub fn seeded_case_bytes(seed: u64, case: u64) -> Vec<u8> {
    let mut rng = SplitMix::new(
        seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
    );
    let mut out = Vec::new();
    let n_main_b = rng.u8();
    let n_aux_b = rng.u8();
    out.push(n_main_b);
    out.push(n_aux_b);
    let rows: u32 = match rng.next_u64() % 100 {
        0..=29 => [0, 1, 2, 3, 5, 7][(rng.next_u64() % 6) as usize],
        30..=74 => 8 + (rng.next_u64() % 505) as u32,
        75..=94 => 513 + (rng.next_u64() % 3584) as u32,
        95..=97 => 20_000 + (rng.next_u64() % 10_000) as u32,
        _ => 70_000 + (rng.next_u64() % 10_000) as u32,
    };
    out.extend_from_slice(&rows.to_le_bytes());
    let aux_rows = (rng.next_u64() % (MAX_AUX_ROWS as u64 + 1)) as u32;
    out.extend_from_slice(&aux_rows.to_le_bytes());
    out.push(u8::from(rng.next_u64().is_multiple_of(4))); // ~25% of cases route via CSV
    let n_main = 1 + (n_main_b as usize) % MAX_COLS;
    let n_aux = 1 + (n_aux_b as usize) % MAX_AUX_COLS;
    for _ in 0..(n_main + n_aux) * 5 {
        out.push(rng.u8());
    }
    let n_ops = (rng.next_u64() % (MAX_OPS as u64 + 1)) as u8;
    out.push(n_ops);
    for _ in 0..n_ops {
        out.push(rng.u8() % NUM_OPCODES);
        out.push(rng.u8());
        out.push(rng.u8());
        out.push(rng.u8());
    }
    out
}

fn dtype_of(kind: ColKind) -> DType {
    match kind {
        ColKind::I64 => DType::Int64,
        ColKind::F64 => DType::Float64,
        ColKind::Bool => DType::Bool,
        ColKind::Utf8 => DType::Utf8,
        ColKind::Datetime => DType::Datetime,
    }
}

/// Build one plain column from its plan. Float values are exact
/// multiples of 0.25 so parallel re-association stays well inside the
/// 1e-12 relative tolerance and CSV round-trips are lossless.
fn build_col(cp: &ColPlan, col_idx: usize, rows: u32) -> Column {
    let mut rng = SplitMix::new(
        ((cp.salt as u64) << 8) ^ (col_idx as u64) ^ 0x51A5_C0DE_F00D_BEEF,
    );
    let card = CARDS[(cp.card as usize) % CARDS.len()].max(1);
    let mut b = ColumnBuilder::new(dtype_of(cp.kind));
    for _ in 0..rows {
        let null_draw = rng.next_u64();
        let v = rng.next_u64();
        if cp.null_every > 0 && null_draw.is_multiple_of(cp.null_every as u64) {
            b.push_null();
            continue;
        }
        match cp.kind {
            ColKind::I64 => b.push_i64((v % card) as i64 - (card / 2) as i64),
            ColKind::F64 => b.push_f64(((v % card) as f64 - card as f64 / 2.0) * 0.25),
            ColKind::Bool => b.push_bool(v & 1 == 1),
            ColKind::Utf8 => b.push_str(&format!("s{}", v % card)),
            ColKind::Datetime => b.push_datetime(86_400 * (v % card) as i64),
        }
    }
    b.finish()
}

/// Build the plain (oracle-side) frame for a plan. Columns are named
/// `c0`, `c1`, ... positionally.
pub fn build_plain(plan: &FramePlan) -> DataFrame {
    let series = plan
        .cols
        .iter()
        .enumerate()
        .map(|(i, cp)| Series::new(format!("c{i}"), build_col(cp, i, plan.rows)))
        .collect();
    DataFrame::new(series).expect("generated frame is well-formed")
}

/// Re-encode the engine's copy per the plan: `Dict` dictionary-encodes
/// Utf8 columns (falling back to plain past the cardinality cap), `Rle`
/// force-run-length-encodes any column. The oracle keeps the plain
/// twin, so every downstream comparison checks encoding-aware kernels
/// against plain semantics.
pub fn encode_for_engine(frame: &DataFrame, plan: &FramePlan) -> DataFrame {
    let mut out = frame.clone();
    for (i, cp) in plan.cols.iter().enumerate() {
        let name = format!("c{i}");
        let col = out.column(&name).expect("planned column").column().clone();
        let encoded = match cp.enc {
            Enc::Plain => None,
            Enc::Dict => (col.dtype() == DType::Utf8 && !col.is_encoded())
                .then(|| dict_encode(&col))
                .flatten(),
            Enc::Rle => (!col.is_encoded()).then(|| force_rle(&col)),
        };
        if let Some(encoded) = encoded {
            out = out.with_column(&name, encoded).expect("same length");
        }
    }
    out
}

static CSV_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp path for a case's CSV routing.
pub fn temp_csv_path() -> PathBuf {
    let n = CSV_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lafp-fuzz-{}-{n}.csv", std::process::id()))
}

/// Write a frame as CSV in the format both readers agree on: header
/// row, empty field = null, `True`/`False` booleans, `to_string`
/// numerics (exact for the generator's quarter-valued floats).
pub fn write_csv(frame: &DataFrame, path: &std::path::Path) {
    use std::io::Write;
    let mut out = String::new();
    let names: Vec<&str> = frame.series().iter().map(|s| s.name()).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..frame.num_rows() {
        let mut fields = Vec::with_capacity(names.len());
        for s in frame.series() {
            fields.push(match s.column().get(i) {
                Scalar::Null => String::new(),
                Scalar::Int(v) => v.to_string(),
                Scalar::Float(v) => v.to_string(),
                Scalar::Bool(v) => if v { "True" } else { "False" }.to_string(),
                Scalar::Str(v) => quote_field(&v),
                Scalar::Datetime(v) => v.to_string(),
            });
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    let mut f = std::fs::File::create(path).expect("create fuzz CSV");
    f.write_all(out.as_bytes()).expect("write fuzz CSV");
}
