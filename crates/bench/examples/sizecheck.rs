//! Internal size-calibration helper.
fn main() {
    use lafp_columnar::csv::{read_csv, CsvOptions};
    use lafp_columnar::HeapSize;
    let dir = lafp_bench::datagen::ensure_datasets(std::path::Path::new("target/lafp-data"), lafp_bench::datagen::Size::Large).unwrap();
    for name in ["emp.csv","nyt.csv","stu.csv","env.csv","dso.csv","zip.csv","ais.csv","cty.csv","fdb.csv","mov.csv"] {
        let p = dir.join(name);
        let csv_bytes = std::fs::metadata(&p).unwrap().len();
        let df = read_csv(&p, &CsvOptions::new()).unwrap();
        println!("{name}: csv={:.1}MB mem={:.1}MB", csv_bytes as f64/1e6, df.heap_size() as f64/1e6);
    }
}
