//! The experiment harness: regenerates every table and figure of §5.
//!
//! ```text
//! cargo run -p lafp-bench --release --bin harness -- all
//! cargo run -p lafp-bench --release --bin harness -- fig12 fig13
//! ```
//!
//! Artifacts: `fig12` `fig13` `fig14` `fig15` `ablation` `overhead`
//! `regress`, or `all`. Data lives under `target/lafp-data/` (override
//! with `LAFP_DATA_DIR`).

use lafp_bench::datagen::Size;
use lafp_bench::experiments;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["fig12", "fig13", "fig14", "fig15", "ablation", "overhead", "regress"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let root = std::env::var("LAFP_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/lafp-data"));

    eprintln!("preparing datasets under {} ...", root.display());
    let dirs = experiments::prepare_data(&root).expect("dataset generation");

    let needs_sweep = wanted
        .iter()
        .any(|w| matches!(*w, "fig12" | "fig13" | "fig14" | "fig15" | "regress"));
    let sizes = Size::ALL;
    let sweep = if needs_sweep {
        eprintln!("running the 10 programs x 6 configurations x 3 sizes sweep ...");
        Some(experiments::run_sweep(&dirs, &sizes))
    } else {
        None
    };

    for artifact in wanted {
        match artifact {
            "fig12" => println!("{}", experiments::figure12(sweep.as_ref().unwrap(), &sizes)),
            "fig13" => println!("{}", experiments::figure13(sweep.as_ref().unwrap())),
            "fig14" => println!("{}", experiments::figure14(sweep.as_ref().unwrap(), &sizes)),
            "fig15" => println!("{}", experiments::figure15(sweep.as_ref().unwrap(), &sizes)),
            "ablation" => println!("{}", experiments::stu_caching_ablation(&dirs)),
            "overhead" => println!("{}", experiments::analysis_overhead(&dirs)),
            "regress" => {
                let (report, ok) = experiments::regression(sweep.as_ref().unwrap(), &sizes);
                println!("{report}");
                if !ok {
                    std::process::exit(1);
                }
            }
            other => eprintln!("unknown artifact {other:?} (use fig12..fig15, ablation, overhead, regress, all)"),
        }
    }
}
