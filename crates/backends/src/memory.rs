//! The simulated memory budget.
//!
//! The paper runs on a 32 GB machine and reports which programs run out of
//! memory per backend and dataset size (Figure 12), plus peak memory
//! consumption (Figure 15). We reproduce both with an explicit tracker:
//! every materialized frame (and transient working set) is *charged*
//! against a budget; exceeding it raises `ColumnarError::OutOfMemory`
//! instead of letting the OS kill the process. Datasets and budget are
//! scaled 1:100, which preserves the working-set-to-budget ratios that
//! decide success or failure.

use lafp_columnar::{ColumnarError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks simulated memory usage against a budget and records the peak.
#[derive(Debug)]
pub struct MemoryTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
    budget: usize,
}

impl MemoryTracker {
    /// A tracker with the given budget in bytes.
    pub fn with_budget(budget: usize) -> Arc<MemoryTracker> {
        Arc::new(MemoryTracker {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            budget,
        })
    }

    /// A tracker that never refuses (still records the peak).
    pub fn unlimited() -> Arc<MemoryTracker> {
        Self::with_budget(usize::MAX)
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently charged.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark since construction (or the last [`reset_peak`]).
    ///
    /// [`reset_peak`]: MemoryTracker::reset_peak
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current usage.
    pub fn reset_peak(&self) {
        self.peak.store(self.current(), Ordering::Relaxed);
    }

    /// Charge `bytes`, failing with `OutOfMemory` if the budget would be
    /// exceeded. Returns an RAII reservation that releases on drop.
    pub fn charge(self: &Arc<Self>, bytes: usize) -> Result<MemoryReservation> {
        // Fault injection: the `alloc` site denies an otherwise-fitting
        // charge, exercising the same degraded path as a genuine budget
        // overflow (spill, or a clean OutOfMemory error).
        if lafp_columnar::faults::fire(lafp_columnar::faults::FaultSite::Alloc).is_some() {
            return Err(ColumnarError::OutOfMemory {
                requested: bytes,
                available: self.budget.saturating_sub(self.current()),
            });
        }
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.budget {
                return Err(ColumnarError::OutOfMemory {
                    requested: bytes,
                    available: self.budget.saturating_sub(cur),
                });
            }
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(MemoryReservation {
                        tracker: Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// RAII guard for charged bytes; dropping it releases the charge.
#[derive(Debug)]
pub struct MemoryReservation {
    tracker: Arc<MemoryTracker>,
    bytes: usize,
}

impl MemoryReservation {
    /// An empty reservation against `tracker` (charges nothing).
    pub fn empty(tracker: &Arc<MemoryTracker>) -> MemoryReservation {
        MemoryReservation {
            tracker: Arc::clone(tracker),
            bytes: 0,
        }
    }

    /// Bytes held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow the reservation by `extra` bytes (used by streaming
    /// accumulators whose state grows as partitions arrive).
    pub fn grow(&mut self, extra: usize) -> Result<()> {
        let more = self.tracker.charge(extra)?;
        self.bytes += more.bytes;
        std::mem::forget(more);
        Ok(())
    }

    /// Give back part of the reservation (used when a buffered partition
    /// is spilled to disk: its bytes leave the simulated working set but
    /// the rest of the buffer stays charged). Clamped to the held amount.
    pub fn shrink(&mut self, bytes: usize) {
        let freed = bytes.min(self.bytes);
        self.tracker.release(freed);
        self.bytes -= freed;
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_via_drop() {
        let t = MemoryTracker::with_budget(100);
        let r = t.charge(60).unwrap();
        assert_eq!(t.current(), 60);
        assert_eq!(t.peak(), 60);
        drop(r);
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 60, "peak survives release");
    }

    #[test]
    fn budget_enforced() {
        let t = MemoryTracker::with_budget(100);
        let _r = t.charge(80).unwrap();
        let err = t.charge(30).unwrap_err();
        match err {
            ColumnarError::OutOfMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 30);
                assert_eq!(available, 20);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // After the failure, a smaller charge still fits.
        assert!(t.charge(20).is_ok());
    }

    #[test]
    fn grow_extends_reservation() {
        let t = MemoryTracker::with_budget(100);
        let mut r = t.charge(10).unwrap();
        r.grow(50).unwrap();
        assert_eq!(t.current(), 60);
        assert_eq!(r.bytes(), 60);
        assert!(r.grow(100).is_err());
        drop(r);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn shrink_releases_partially_and_clamps() {
        let t = MemoryTracker::with_budget(100);
        let mut r = t.charge(80).unwrap();
        r.shrink(30);
        assert_eq!(t.current(), 50);
        assert_eq!(r.bytes(), 50);
        // Shrinking past the held amount clamps instead of underflowing.
        r.shrink(1000);
        assert_eq!(t.current(), 0);
        assert_eq!(r.bytes(), 0);
        drop(r);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = MemoryTracker::unlimited();
        let a = t.charge(100).unwrap();
        drop(a);
        let _b = t.charge(40).unwrap();
        assert_eq!(t.peak(), 100);
        t.reset_peak();
        assert_eq!(t.peak(), 40);
    }

    #[test]
    fn shared_dictionary_charged_once_across_chunks() {
        use lafp_columnar::{encoding, Column, HeapSize};

        // 4096 rows over 8 long distinct entries: with per-chunk double
        // counting the dictionary bytes would dominate the charge.
        let vals: Vec<String> = (0..4096)
            .map(|i| format!("category-with-a-deliberately-long-name-{}", i % 8))
            .collect();
        let encoded = encoding::dict_encode(&Column::from_strings(&vals)).expect("encodes");
        let dict_bytes = match &encoded {
            Column::Dict(c, _) => c.dict.heap_size(),
            other => panic!("expected Dict, got {other:?}"),
        };
        let whole = encoded.heap_size();

        // Chunk the column the way the Dask engine partitions frames:
        // eight slices, all holding the same `Arc`'d dictionary.
        let chunks: Vec<Column> = (0..8).map(|k| encoded.slice(k * 512, 512)).collect();
        let summed: usize = chunks.iter().map(HeapSize::heap_size).sum();

        // The dictionary must be amortized across its holders, not
        // charged per chunk: the chunked total stays within one extra
        // dictionary of the unchunked column instead of ballooning by
        // eight dictionaries.
        assert!(
            summed <= whole + dict_bytes,
            "shared dict double-counted: chunks={summed} whole={whole} dict={dict_bytes}"
        );

        // And a budget sized for single-counting admits every chunk at
        // once — the regression (full dict charged per chunk) overflows.
        let tracker = MemoryTracker::with_budget(whole + dict_bytes);
        let reservations: Vec<MemoryReservation> = chunks
            .iter()
            .map(|c| tracker.charge(c.heap_size()).expect("chunk fits budget"))
            .collect();
        assert!(tracker.current() <= tracker.budget());
        drop(reservations);
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn concurrent_charges_stay_within_budget() {
        let t = MemoryTracker::with_budget(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..100 {
                        if let Ok(r) = t.charge(10) {
                            assert!(t.current() <= 1000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(t.current(), 0);
    }
}
