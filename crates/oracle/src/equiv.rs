//! Representation-agnostic result equivalence.
//!
//! The engine is free to return any `Column` variant (plain, `Dict`,
//! `Rle`, arena-backed strings) as long as the *logical* values match
//! the oracle: same length, same reported dtype, and per-row scalar
//! equality where nulls equal nulls and Float64 NaN counts as null.
//!
//! The `check_*` functions return `Err(String)` describing the first
//! divergence (the fuzzer's comparison primitive); the `assert_*`
//! wrappers panic with the same message (the test-suite ergonomics).

use lafp_columnar::{Column, DataFrame, Scalar};

/// First per-row divergence between two columns, or `Ok`.
pub fn check_col_equiv(actual: &Column, expected: &Column, what: &str) -> Result<(), String> {
    check_col_close(actual, expected, 0.0, what)
}

/// [`check_col_equiv`] with a relative tolerance for Float64 values
/// (both exactly equal and within `tol * max(|a|, |b|)` pass). A zero
/// tolerance demands exact equality.
pub fn check_col_close(
    actual: &Column,
    expected: &Column,
    tol: f64,
    what: &str,
) -> Result<(), String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "{what}: length {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    if actual.dtype() != expected.dtype() {
        return Err(format!(
            "{what}: dtype {:?} vs {:?}",
            actual.dtype(),
            expected.dtype()
        ));
    }
    for i in 0..actual.len() {
        let (a, e) = (actual.get(i), expected.get(i));
        let ok = match (&a, &e) {
            (Scalar::Float(x), Scalar::Float(y)) => {
                x == y || (x - y).abs() <= tol * x.abs().max(y.abs())
            }
            _ => (a.is_null() && e.is_null()) || a == e,
        };
        if !ok {
            return Err(format!("{what}: row {i}: {a:?} vs {e:?}"));
        }
    }
    Ok(())
}

/// First divergence between two frames (column count, names in order,
/// then per-column [`check_col_equiv`]), or `Ok`.
pub fn check_frame_equiv(actual: &DataFrame, expected: &DataFrame, what: &str) -> Result<(), String> {
    check_frame_close(actual, expected, 0.0, what)
}

/// [`check_frame_equiv`] with a relative Float64 tolerance — the
/// established 1e-12 re-association allowance for parallel float
/// aggregation.
pub fn check_frame_close(
    actual: &DataFrame,
    expected: &DataFrame,
    tol: f64,
    what: &str,
) -> Result<(), String> {
    if actual.num_columns() != expected.num_columns() {
        return Err(format!(
            "{what}: {} columns vs {}",
            actual.num_columns(),
            expected.num_columns()
        ));
    }
    for (a, e) in actual.series().iter().zip(expected.series()) {
        if a.name() != e.name() {
            return Err(format!("{what}: column {:?} vs {:?}", a.name(), e.name()));
        }
        check_col_close(a.column(), e.column(), tol, &format!("{what}.{}", a.name()))?;
    }
    Ok(())
}

/// Panicking wrapper over [`check_col_equiv`].
pub fn assert_col_equiv(actual: &Column, expected: &Column, what: &str) {
    if let Err(msg) = check_col_equiv(actual, expected, what) {
        panic!("{msg}");
    }
}

/// Panicking wrapper over [`check_frame_equiv`].
pub fn assert_frame_equiv(actual: &DataFrame, expected: &DataFrame, what: &str) {
    if let Err(msg) = check_frame_equiv(actual, expected, what) {
        panic!("{msg}");
    }
}

/// Panicking wrapper over [`check_frame_close`].
pub fn assert_frame_close(actual: &DataFrame, expected: &DataFrame, tol: f64, what: &str) {
    if let Err(msg) = check_frame_close(actual, expected, tol, what) {
        panic!("{msg}");
    }
}
