//! The Just-in-Time static analysis pipeline (paper §2.4, Figure 5).
//!
//! `pd.analyze()` in a PandaScript program transfers control here: the
//! source is parsed, converted to the CFG IR, analyzed, rewritten, and
//! converted back to source; the caller (the interpreter) then executes
//! the optimized program instead of the original — no separate compile
//! step, exactly as the paper prescribes.

use crate::passes;
use lafp_analysis::{dfvars, laa, lda};
use lafp_ir::ast::Ast;
use lafp_ir::codegen::emit_module;
use lafp_ir::lower::lower;
use lafp_ir::parser::parse;
use lafp_ir::SyntaxError;
use std::path::PathBuf;
use std::time::Duration;

/// Which rewrite passes run (ablation toggles for the benchmarks).
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// §3.1 column selection.
    pub column_selection: bool,
    /// §3.3 lazy print.
    pub lazy_print: bool,
    /// §3.4 forced compute with §3.5 live_df.
    pub forced_compute: bool,
    /// §3.6 metadata-driven category dtypes.
    pub metadata_dtypes: bool,
    /// Base directory for resolving relative dataset paths (metadata pass).
    pub data_dir: Option<PathBuf>,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            column_selection: true,
            lazy_print: true,
            forced_compute: true,
            metadata_dtypes: true,
            data_dir: None,
        }
    }
}

/// What the JIT pass did — input to the §5.3 overhead experiment and the
/// regression harness.
#[derive(Debug, Clone, Default)]
pub struct RewriteReport {
    /// usecols injected per dataframe variable.
    pub usecols: Vec<(String, Vec<String>)>,
    /// Lazy print was enabled.
    pub lazy_print: bool,
    /// Forced-compute rewrites: (line, argument, live_df list).
    pub forced_computes: Vec<(usize, String, Vec<String>)>,
    /// Category dtypes applied: (frame var, column).
    pub categories: Vec<(String, String)>,
    /// Wall-clock time of parse + analyses + rewrite + emit.
    pub duration: Duration,
}

/// An analyzed-and-optimized program.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The rewritten AST (executable by the interpreter).
    pub ast: Ast,
    /// The optimized source (Figure 4 / Figure 8 style output).
    pub optimized_source: String,
    /// What happened.
    pub report: RewriteReport,
}

/// Run the Figure-5 pipeline on a source program.
pub fn analyze(source: &str, options: &RewriteOptions) -> Result<AnalyzedProgram, SyntaxError> {
    let started = std::time::Instant::now();
    let mut ast = parse(source)?;
    let mut report = RewriteReport::default();

    // Analyses on the *original* program.
    let cfg = lower(&ast);
    let info = dfvars::infer(&ast);
    let laa_result = laa::analyze(&ast, &cfg, &info);
    let lda_result = lda::analyze(&ast, &cfg);

    passes::strip_analyze(&mut ast, &info);
    if options.column_selection {
        report.usecols = passes::column_selection(
            &mut ast,
            &cfg,
            &info,
            &laa_result,
            options.data_dir.as_deref(),
        );
    }
    if options.forced_compute {
        report.forced_computes = passes::forced_compute(&mut ast, &cfg, &info, &lda_result);
    }
    if options.metadata_dtypes {
        report.categories =
            passes::metadata_category(&mut ast, &info, options.data_dir.as_deref());
    }
    if options.lazy_print {
        report.lazy_print = passes::lazy_print(&mut ast, &info);
    }

    let optimized_source = emit_module(&ast);
    report.duration = started.elapsed();
    Ok(AnalyzedProgram {
        ast,
        optimized_source,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
df = df.groupby(['day'])['passenger_count'].sum()
print(df)
";

    #[test]
    fn figure3_becomes_figure4() {
        let analyzed = analyze(FIG3, &RewriteOptions::default()).unwrap();
        let out = &analyzed.optimized_source;
        // The shape of Figure 4: lazy print import, usecols, flush, no analyze().
        assert!(out.contains("from lazyfatpandas.func import print"), "{out}");
        assert!(out.contains("usecols="), "{out}");
        assert!(out.contains("'fare_amount'"));
        assert!(out.trim_end().ends_with("pd.flush()"));
        assert!(!out.contains("analyze"));
        // Optimized source must re-parse.
        lafp_ir::parser::parse(out).unwrap();
        assert_eq!(analyzed.report.usecols.len(), 1);
        assert!(analyzed.report.lazy_print);
    }

    #[test]
    fn figure10_becomes_figure11() {
        let src = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
df = pd.read_csv('data.csv')
print(df.head())
df['day'] = df.pickup_datetime.dt.dayofweek
p_per_day = df.groupby(['day'])['passenger_count'].sum()
print(p_per_day)
plt.plot(p_per_day)
plt.savefig('fig.png')
avg_fare = df.fare_amount.mean()
print(f'Average fare: {avg_fare}')
";
        let analyzed = analyze(src, &RewriteOptions::default()).unwrap();
        let out = &analyzed.optimized_source;
        assert!(
            out.contains("plt.plot(p_per_day.compute(live_df=[df]))"),
            "{out}"
        );
        assert!(out.contains("from lazyfatpandas.func import print"));
        assert!(out.trim_end().ends_with("pd.flush()"));
        // Column selection picked the three used columns.
        assert!(out.contains("'fare_amount'") && out.contains("'passenger_count'"));
        assert_eq!(analyzed.report.forced_computes.len(), 1);
    }

    #[test]
    fn toggles_disable_passes() {
        let opts = RewriteOptions {
            column_selection: false,
            lazy_print: false,
            forced_compute: false,
            metadata_dtypes: false,
            data_dir: None,
        };
        let analyzed = analyze(FIG3, &opts).unwrap();
        let out = &analyzed.optimized_source;
        assert!(!out.contains("usecols"));
        assert!(!out.contains("flush"));
        assert!(!out.contains("analyze"), "strip_analyze always runs");
    }

    #[test]
    fn overhead_is_small_and_measured() {
        let analyzed = analyze(FIG3, &RewriteOptions::default()).unwrap();
        assert!(analyzed.report.duration.as_secs_f64() < 1.0);
        assert!(analyzed.report.duration.as_nanos() > 0);
    }

    #[test]
    fn syntax_errors_propagate() {
        assert!(analyze("x = (\n", &RewriteOptions::default()).is_err());
    }
}
