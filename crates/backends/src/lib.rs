//! # lafp-backends
//!
//! The three execution backends the paper's LaFP runtime targets (§2.5–2.6),
//! rebuilt from scratch on top of `lafp-columnar`:
//!
//! * **Pandas-like** ([`eager::EagerEngine`] with [`BackendKind::Pandas`]) —
//!   single-threaded, whole-frame, row-order-preserving, memory-resident.
//! * **Modin-like** ([`BackendKind::Modin`]) — the same eager API executed
//!   partition-parallel across threads; order preserving.
//! * **Dask-like** ([`dask::DaskEngine`]) — a self-contained lazy framework
//!   with its own task graph, its own optimizer (cull / scan pushdown /
//!   head limiting) and a streaming, partition-at-a-time executor that
//!   supports datasets larger than the (simulated) memory budget, plus
//!   `persist()`. It does not guarantee row order for positional access,
//!   mirroring the paper's discussion of Dask (§5.2).
//!
//! All engines charge a shared [`memory::MemoryTracker`]; exceeding its
//! budget produces `ColumnarError::OutOfMemory`, which is how the
//! reproduction regenerates the paper's Figure 12 success/failure matrix.

#![warn(missing_docs)]

pub mod dask;
pub mod eager;
pub mod kind;
pub mod memory;

pub use dask::{DaskEngine, DaskNodeId, DaskOp, DaskValue};
pub use eager::EagerEngine;
pub use kind::BackendKind;
pub use memory::{MemoryReservation, MemoryTracker};
