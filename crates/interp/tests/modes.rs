//! Cross-configuration integration tests: the same PandaScript program
//! must produce hash-identical results in all six configurations (§5.2).

use lafp_backends::BackendKind;
use lafp_columnar::column::Column;
use lafp_columnar::csv::write_csv;
use lafp_columnar::df;
use lafp_core::LafpConfig;
use lafp_interp::{result_hash, ExecMode, Interp};
use lafp_rewrite::{analyze, RewriteOptions};
use std::path::{Path, PathBuf};

fn dataset(rows: usize) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "lafp-interp-it-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let trips = df![
        (
            "pickup_datetime",
            Column::from_datetimes(
                (0..rows)
                    .map(|i| 1_700_000_000 + (i as i64) * 3600)
                    .collect()
            )
        ),
        (
            "fare_amount",
            Column::from_f64((0..rows).map(|i| (i % 40) as f64 - 3.0).collect())
        ),
        (
            "passenger_count",
            Column::from_i64((0..rows).map(|i| (i % 4 + 1) as i64).collect())
        ),
        (
            "vendor",
            Column::from_strings((0..rows).map(|i| format!("V{}", i % 3)).collect::<Vec<_>>())
        ),
        (
            "unused_blob",
            Column::from_strings((0..rows).map(|i| format!("blob-{i}")).collect::<Vec<_>>())
        ),
    ];
    let trips_path = dir.join("trips.csv");
    write_csv(&trips, &trips_path).unwrap();
    let lookup = df![
        ("vendor", Column::from_strings(vec!["V0", "V1", "V2"])),
        ("vendor_name", Column::from_strings(vec!["Acme", "Blue", "Cab"])),
    ];
    let lookup_path = dir.join("vendors.csv");
    write_csv(&lookup, &lookup_path).unwrap();
    (dir, trips_path)
}

const PROGRAM: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('trips.csv', parse_dates=['pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.pickup_datetime.dt.dayofweek
g = df.groupby(['day'])['passenger_count'].sum()
print(g)
avg = df.fare_amount.mean()
print(f'Average fare: {avg}')
";

fn run_mode(mode: ExecMode, backend: BackendKind, src: &str, dir: &Path) -> Vec<String> {
    let config = LafpConfig {
        backend,
        chunk_rows: 16,
        ..Default::default()
    };
    let mut interp = Interp::new(mode, config, dir.to_path_buf());
    let ast = lafp_ir::parser::parse(src).unwrap();
    interp.run(&ast).unwrap().output
}

fn run_lafp(backend: BackendKind, src: &str, dir: &Path) -> Vec<String> {
    let opts = RewriteOptions {
        data_dir: Some(dir.to_path_buf()),
        ..Default::default()
    };
    let analyzed = analyze(src, &opts).unwrap();
    let config = LafpConfig {
        backend,
        chunk_rows: 16,
        ..Default::default()
    };
    let mut interp = Interp::new(ExecMode::Lafp, config, dir.to_path_buf());
    interp.run(&analyzed.ast).unwrap().output
}

#[test]
fn all_six_configurations_agree() {
    let (dir, _) = dataset(100);
    let pandas = run_mode(ExecMode::Eager(BackendKind::Pandas), BackendKind::Pandas, PROGRAM, &dir);
    let modin = run_mode(ExecMode::Eager(BackendKind::Modin), BackendKind::Modin, PROGRAM, &dir);
    let dask = run_mode(ExecMode::PlainDask, BackendKind::Dask, PROGRAM, &dir);
    let lpandas = run_lafp(BackendKind::Pandas, PROGRAM, &dir);
    let lmodin = run_lafp(BackendKind::Modin, PROGRAM, &dir);
    let ldask = run_lafp(BackendKind::Dask, PROGRAM, &dir);

    let reference = result_hash(&pandas);
    assert_eq!(pandas.len(), 2);
    for (name, out) in [
        ("modin", &modin),
        ("dask", &dask),
        ("lpandas", &lpandas),
        ("lmodin", &lmodin),
        ("ldask", &ldask),
    ] {
        assert_eq!(out.len(), pandas.len(), "{name}: {out:?}");
        assert_eq!(result_hash(out), reference, "{name}:\n{out:#?}\nvs\n{pandas:#?}");
    }
}

#[test]
fn merge_and_sort_program_agrees() {
    let (dir, _) = dataset(60);
    let src = "\
import lazyfatpandas.pandas as pd
pd.analyze()
t = pd.read_csv('trips.csv')
v = pd.read_csv('vendors.csv')
m = t.merge(v, on=['vendor'], how='inner')
g = m.groupby(['vendor_name'])['fare_amount'].mean()
s = g.sort_values(['vendor_name'], ascending=True)
print(s)
";
    let pandas = run_mode(ExecMode::Eager(BackendKind::Pandas), BackendKind::Pandas, src, &dir);
    let ldask = run_lafp(BackendKind::Dask, src, &dir);
    let dask = run_mode(ExecMode::PlainDask, BackendKind::Dask, src, &dir);
    assert_eq!(result_hash(&pandas), result_hash(&ldask), "{pandas:?} vs {ldask:?}");
    assert_eq!(result_hash(&pandas), result_hash(&dask));
}

#[test]
fn external_plot_forces_compute_everywhere() {
    let (dir, _) = dataset(40);
    let src = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
df = pd.read_csv('trips.csv')
g = df.groupby(['vendor'])['fare_amount'].sum()
plt.plot(g)
avg = df.fare_amount.mean()
print(f'avg {avg}')
";
    // LaFP path (rewritten, with live_df).
    let analyzed = analyze(src, &RewriteOptions::default()).unwrap();
    assert!(analyzed.optimized_source.contains("compute(live_df=[df])"));
    let config = LafpConfig {
        backend: BackendKind::Dask,
        chunk_rows: 16,
        ..Default::default()
    };
    let mut interp = Interp::new(ExecMode::Lafp, config, dir.clone());
    let out = interp.run(&analyzed.ast).unwrap();
    assert_eq!(out.plots.len(), 1, "plot recorded");
    assert_eq!(out.output.len(), 1);
    // Plain pandas baseline.
    let pandas = {
        let config = LafpConfig::default();
        let mut interp = Interp::new(
            ExecMode::Eager(BackendKind::Pandas),
            config,
            dir.clone(),
        );
        let ast = lafp_ir::parser::parse(src).unwrap();
        interp.run(&ast).unwrap()
    };
    assert_eq!(pandas.plots.len(), 1);
    assert_eq!(result_hash(&pandas.output), result_hash(&out.output));
}

#[test]
fn control_flow_and_loops_run() {
    let (dir, _) = dataset(30);
    let src = "\
import lazyfatpandas.pandas as pd
pd.analyze()
total = 0
for name in ['trips.csv', 'trips.csv']:
    df = pd.read_csv(name)
    n = len(df)
    total = total + n
if total > 0:
    print(f'total {total}')
else:
    print('empty')
";
    let pandas = run_mode(ExecMode::Eager(BackendKind::Pandas), BackendKind::Pandas, src, &dir);
    assert_eq!(pandas, vec!["total 60".to_string()]);
    let ldask = run_lafp(BackendKind::Dask, src, &dir);
    assert_eq!(ldask, vec!["total 60".to_string()]);
}

#[test]
fn column_selection_reduces_lafp_memory() {
    let (dir, _) = dataset(2000);
    // Optimized (usecols injected) vs unoptimized on the Pandas backend.
    let analyzed = analyze(PROGRAM, &RewriteOptions::default()).unwrap();
    assert!(!analyzed.report.usecols.is_empty());
    let run = |ast: &lafp_ir::ast::Ast| {
        let config = LafpConfig {
            backend: BackendKind::Pandas,
            ..Default::default()
        };
        let mut interp = Interp::new(ExecMode::Lafp, config, dir.clone());
        interp.run(ast).unwrap().peak_memory
    };
    let optimized_peak = run(&analyzed.ast);
    let no_opt = analyze(
        PROGRAM,
        &RewriteOptions {
            column_selection: false,
            lazy_print: false,
            forced_compute: false,
            metadata_dtypes: false,
            data_dir: None,
        },
    )
    .unwrap();
    let baseline_peak = run(&no_opt.ast);
    // Margin note: arena-backed Utf8 storage charges strings at their
    // actual bytes (no per-row Arc/Vec-slot overhead), and ingest-side
    // dictionary encoding now shrinks the low-cardinality vendor column
    // in the *unoptimized* read too — each representation win makes the
    // baseline cheaper and the relative pruning win smaller (29% under
    // plain arenas, ~21% with encoded ingest). Pruning unused columns
    // must still cut peak memory by a solid sixth.
    assert!(
        (optimized_peak as f64) < 0.84 * baseline_peak as f64,
        "column selection should cut peak memory: {optimized_peak} vs {baseline_peak}"
    );
}
