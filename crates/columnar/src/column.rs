//! Typed column vectors and their vectorized kernels.

use crate::bitmap::Bitmap;
use crate::dtype::DType;
use crate::error::{ColumnarError, Result};
use crate::strings::{Utf8Builder, Utf8Col};
use crate::value::{self, Scalar};
use crate::HeapSize;
use std::sync::Arc;

/// Internal index abstraction so gather kernels can run over `u32` or
/// `usize` index vectors — the join emits `u32` row ids when both sides
/// fit, halving the index memory traffic through output assembly.
pub(crate) trait IndexLike: Copy {
    /// Widen to a `usize` index.
    fn idx(self) -> usize;
    /// Narrow from a `usize` index (caller guarantees it fits).
    fn from_usize(i: usize) -> Self;
    /// Sentinel marking "no source row" in null-aware gathers.
    const SENTINEL: Self;
    /// Is this the sentinel?
    fn is_sentinel(self) -> bool;
}

impl IndexLike for usize {
    #[inline]
    fn idx(self) -> usize {
        self
    }
    #[inline]
    fn from_usize(i: usize) -> Self {
        i
    }
    const SENTINEL: usize = usize::MAX;
    #[inline]
    fn is_sentinel(self) -> bool {
        self == usize::MAX
    }
}

impl IndexLike for u32 {
    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_usize(i: usize) -> Self {
        debug_assert!(i < u32::MAX as usize);
        i as u32
    }
    const SENTINEL: u32 = u32::MAX;
    #[inline]
    fn is_sentinel(self) -> bool {
        self == u32::MAX
    }
}

/// Dictionary-encoded string column payload (pandas `category`).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    /// Per-row indexes into `dict`.
    pub codes: Vec<u32>,
    /// The (deduplicated) category values — stored in the same
    /// arena-backed layout as plain `Utf8` columns and shared across
    /// derived columns.
    pub dict: Arc<Utf8Col>,
}

/// Run-length-encoded column payload: `values` holds one row per
/// maximal run of equal values (null runs included — run-level nulls
/// live in `values`' own validity/NaN state), `ends[k]` is the
/// exclusive row index where run `k` stops. `ends` is strictly
/// increasing and its last entry is the logical row count.
#[derive(Debug, Clone)]
pub struct RleCol {
    /// One row per run: the run's value (or null).
    pub values: Box<Column>,
    /// Exclusive end row of each run; `ends.last()` is the column length.
    pub ends: Vec<u32>,
}

impl RleCol {
    /// Logical row count.
    pub fn len(&self) -> usize {
        self.ends.last().map_or(0, |&e| e as usize)
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.ends.len()
    }

    /// The run containing row `i` (binary search over run ends).
    #[inline]
    pub fn run_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.ends.partition_point(|&e| e as usize <= i)
    }

    /// Start row of run `k`.
    #[inline]
    pub fn run_start(&self, k: usize) -> usize {
        if k == 0 {
            0
        } else {
            self.ends[k - 1] as usize
        }
    }

    /// `(start, end)` row range of run `k`.
    #[inline]
    pub fn run_bounds(&self, k: usize) -> (usize, usize) {
        (self.run_start(k), self.ends[k] as usize)
    }
}

/// A typed column of values with an optional validity mask.
///
/// `validity == None` means "no nulls". For `Float64`, `NaN` additionally
/// counts as null, matching pandas.
///
/// Two variants are *encodings*, not dtypes: [`Column::Dict`] reports
/// [`DType::Utf8`] and [`Column::Rle`] reports its run values' dtype, so
/// the planner and schema layers never see them. Kernels either run on
/// the encoded form directly (the fast paths) or fall back through
/// [`Column::decode`]. Equality is *logical* across encodings: a `Dict`
/// column equals the `Utf8` column it decodes to.
///
/// ```
/// use lafp_columnar::{Column, Scalar};
/// let c = Column::from_opt_i64(vec![Some(3), None, Some(5)]);
/// assert_eq!(c.len(), 3);
/// assert!(c.is_null_at(1));
/// assert_eq!(c.sum(), Scalar::Int(8));
/// ```
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>, Option<Bitmap>),
    /// 64-bit floats (NaN ≡ null).
    Float64(Vec<f64>, Option<Bitmap>),
    /// Booleans.
    Bool(Bitmap, Option<Bitmap>),
    /// UTF-8 strings in an arena ([`Utf8Col`]): one contiguous byte
    /// buffer plus row offsets. Gathers (`filter`/`take`/`sort`) are
    /// byte memcpys into a fresh compact arena; `slice` shares the
    /// arena zero-copy.
    Utf8(Utf8Col, Option<Bitmap>),
    /// Epoch-second timestamps.
    Datetime(Vec<i64>, Option<Bitmap>),
    /// Dictionary-encoded strings (codes into an arena-backed dict).
    Categorical(Categorical, Option<Bitmap>),
    /// Dictionary-*encoded* strings: same payload as `Categorical`, but
    /// transparent — `dtype()` reports `Utf8`, so every consumer treats
    /// it as a string column that happens to be compressed. Null rows'
    /// codes point at an interned `""` entry so `decode()` reproduces
    /// the normalized null-slot sentinel.
    Dict(Categorical, Option<Bitmap>),
    /// Run-length-encoded scalar lanes (see [`RleCol`]); `dtype()`
    /// reports the run values' dtype.
    Rle(RleCol),
}

impl PartialEq for Column {
    /// Same-variant pairs compare structurally (buffer-for-buffer, the
    /// semantics the previous `derive(PartialEq)` had); any pair that
    /// involves an encoding compares *logically*, row by row, so an
    /// encoded column equals its decoded form.
    fn eq(&self, other: &Column) -> bool {
        match (self, other) {
            (Column::Int64(a, va), Column::Int64(b, vb)) => a == b && va == vb,
            (Column::Float64(a, va), Column::Float64(b, vb)) => a == b && va == vb,
            (Column::Bool(a, va), Column::Bool(b, vb)) => a == b && va == vb,
            (Column::Utf8(a, va), Column::Utf8(b, vb)) => a == b && va == vb,
            (Column::Datetime(a, va), Column::Datetime(b, vb)) => a == b && va == vb,
            (Column::Categorical(a, va), Column::Categorical(b, vb)) => a == b && va == vb,
            (Column::Dict(a, va), Column::Dict(b, vb)) => a == b && va == vb,
            (Column::Dict(..) | Column::Rle(..), _) | (_, Column::Dict(..) | Column::Rle(..)) => {
                logical_eq(self, other)
            }
            _ => false,
        }
    }
}

/// Row-by-row logical equality across representations: same dtype, same
/// length, same null positions, equal scalars at every valid row.
fn logical_eq(a: &Column, b: &Column) -> bool {
    a.dtype() == b.dtype()
        && a.len() == b.len()
        && (0..a.len()).all(|i| match (a.is_null_at(i), b.is_null_at(i)) {
            (true, true) => true,
            (false, false) => a.get(i) == b.get(i),
            _ => false,
        })
}

/// Binary comparison operators for [`Column::compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an `Ordering`-comparable pair.
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Binary arithmetic operators for [`Column::arith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always produces float, like pandas true division)
    Div,
    /// `%`
    Mod,
}

/// Datetime accessor fields (`.dt.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtField {
    /// Monday=0 .. Sunday=6.
    DayOfWeek,
    /// Hour of day 0..23.
    Hour,
    /// Day of month 1..31.
    Day,
    /// Month 1..12.
    Month,
    /// Calendar year.
    Year,
}

impl DtField {
    /// Parse the pandas accessor name.
    pub fn parse(name: &str) -> Option<DtField> {
        match name {
            "dayofweek" | "weekday" => Some(DtField::DayOfWeek),
            "hour" => Some(DtField::Hour),
            "day" => Some(DtField::Day),
            "month" => Some(DtField::Month),
            "year" => Some(DtField::Year),
            _ => None,
        }
    }
}

/// String accessor operations (`.str.*`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StrOp {
    /// Lowercase.
    Lower,
    /// Uppercase.
    Upper,
    /// Character count (as Int64).
    Len,
    /// Substring containment test (as Bool).
    Contains(String),
    /// Prefix test (as Bool).
    StartsWith(String),
}

impl Column {
    // -- constructors --------------------------------------------------

    /// Int column without nulls.
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column::Int64(values, None)
    }

    /// Float column without a validity mask (NaN still reads as null).
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column::Float64(values, None)
    }

    /// Bool column without nulls.
    pub fn from_bool(values: Vec<bool>) -> Column {
        Column::Bool(Bitmap::from_bools(&values), None)
    }

    /// String column without nulls.
    pub fn from_strings<S: AsRef<str>, I: IntoIterator<Item = S>>(values: I) -> Column {
        Column::Utf8(Utf8Col::from_values(values), None)
    }

    /// Datetime column (epoch seconds) without nulls.
    pub fn from_datetimes(values: Vec<i64>) -> Column {
        Column::Datetime(values, None)
    }

    /// Int column with nulls.
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Column {
        let validity = Bitmap::from_iter(values.iter().map(Option::is_some));
        let data = values.into_iter().map(Option::unwrap_or_default).collect();
        Column::Int64(data, some_if_has_nulls(validity))
    }

    /// Float column with nulls (stored as NaN and masked).
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Column {
        let validity = Bitmap::from_iter(values.iter().map(Option::is_some));
        let data = values
            .into_iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect();
        Column::Float64(data, some_if_has_nulls(validity))
    }

    /// String column with nulls (null slots hold the empty string).
    pub fn from_opt_strings(values: Vec<Option<String>>) -> Column {
        let validity = Bitmap::from_iter(values.iter().map(Option::is_some));
        let data =
            Utf8Col::from_values(values.iter().map(|v| v.as_deref().unwrap_or_default()));
        Column::Utf8(data, some_if_has_nulls(validity))
    }

    /// Datetime column with nulls.
    pub fn from_opt_datetimes(values: Vec<Option<i64>>) -> Column {
        let validity = Bitmap::from_iter(values.iter().map(Option::is_some));
        let data = values.into_iter().map(Option::unwrap_or_default).collect();
        Column::Datetime(data, some_if_has_nulls(validity))
    }

    /// Column of `len` copies of a scalar.
    pub fn full(len: usize, value: &Scalar) -> Column {
        match value {
            Scalar::Null => Column::Float64(vec![f64::NAN; len], Some(Bitmap::new(len, false))),
            Scalar::Int(v) => Column::from_i64(vec![*v; len]),
            Scalar::Float(v) => Column::from_f64(vec![*v; len]),
            Scalar::Bool(v) => Column::from_bool(vec![*v; len]),
            Scalar::Str(v) => {
                Column::Utf8(Utf8Col::from_values(std::iter::repeat_n(v.as_str(), len)), None)
            }
            Scalar::Datetime(v) => Column::from_datetimes(vec![*v; len]),
        }
    }

    /// Build a column of the given dtype from scalars (used by builders and
    /// tests). Scalars must be null or coercible to `dtype`.
    pub fn from_scalars(dtype: DType, values: &[Scalar]) -> Result<Column> {
        let mut col = ColumnBuilder::new(dtype);
        for v in values {
            col.push_scalar(v)?;
        }
        Ok(col.finish())
    }

    // -- basics --------------------------------------------------------

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v, _) => v.len(),
            Column::Float64(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Utf8(v, _) => v.len(),
            Column::Datetime(v, _) => v.len(),
            Column::Categorical(c, _) | Column::Dict(c, _) => c.codes.len(),
            Column::Rle(r) => r.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's dtype. Encodings are transparent: `Dict` is a
    /// string column, `Rle` has its run values' dtype.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Int64(..) => DType::Int64,
            Column::Float64(..) => DType::Float64,
            Column::Bool(..) => DType::Bool,
            Column::Utf8(..) | Column::Dict(..) => DType::Utf8,
            Column::Datetime(..) => DType::Datetime,
            Column::Categorical(..) => DType::Categorical,
            Column::Rle(r) => r.values.dtype(),
        }
    }

    /// True when the column is stored in an encoded representation
    /// ([`Column::Dict`] or [`Column::Rle`]).
    pub fn is_encoded(&self) -> bool {
        matches!(self, Column::Dict(..) | Column::Rle(..))
    }

    /// Validity mask, if any. `Rle` columns keep nulls at run
    /// granularity inside their values column and report `None` here;
    /// use [`Column::is_null_at`] / [`Column::count_null`] for
    /// row-level null state that covers every representation.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Bool(_, v)
            | Column::Utf8(_, v)
            | Column::Datetime(_, v)
            | Column::Categorical(_, v)
            | Column::Dict(_, v) => v.as_ref(),
            Column::Rle(_) => None,
        }
    }

    /// Is row `i` null? (NaN counts for floats.)
    pub fn is_null_at(&self, i: usize) -> bool {
        if let Some(v) = self.validity() {
            if !v.get(i) {
                return true;
            }
        }
        match self {
            Column::Float64(data, _) => data[i].is_nan(),
            Column::Rle(r) => r.values.is_null_at(r.run_of(i)),
            _ => false,
        }
    }

    /// Number of non-null rows.
    pub fn count_valid(&self) -> usize {
        match self {
            // Floats must additionally discount NaN cells.
            Column::Float64(data, validity) => match validity {
                Some(m) => data
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| m.get(*i) && !v.is_nan())
                    .count(),
                None => data.iter().filter(|v| !v.is_nan()).count(),
            },
            // Per-run: a run contributes its whole width when its value
            // row is valid.
            Column::Rle(r) => (0..r.num_runs())
                .filter(|&k| !r.values.is_null_at(k))
                .map(|k| {
                    let (s, e) = r.run_bounds(k);
                    e - s
                })
                .sum(),
            _ => match self.validity() {
                Some(m) => m.count_set(),
                None => self.len(),
            },
        }
    }

    /// Number of null rows.
    pub fn count_null(&self) -> usize {
        self.len() - self.count_valid()
    }

    /// Value at row `i` as a scalar.
    pub fn get(&self, i: usize) -> Scalar {
        if self.is_null_at(i) {
            return Scalar::Null;
        }
        match self {
            Column::Int64(v, _) => Scalar::Int(v[i]),
            Column::Float64(v, _) => Scalar::Float(v[i]),
            Column::Bool(v, _) => Scalar::Bool(v.get(i)),
            Column::Utf8(v, _) => Scalar::Str(v.get(i).to_string()),
            Column::Datetime(v, _) => Scalar::Datetime(v[i]),
            Column::Categorical(c, _) | Column::Dict(c, _) => {
                Scalar::Str(c.dict.get(c.codes[i] as usize).to_string())
            }
            Column::Rle(r) => r.values.get(r.run_of(i)),
        }
    }

    // -- encodings -------------------------------------------------------

    /// Materialize an encoded column into its plain representation:
    /// `Dict` gathers dictionary bytes into a fresh arena, `Rle` expands
    /// runs into full lanes. Plain columns clone. This is the explicit,
    /// caller-requested decode — kernels that bail out of an encoded
    /// fast path go through the crate-internal `Column::decoded` instead,
    /// which also bumps the decode-fallback counter.
    pub fn decode(&self) -> Column {
        match self {
            Column::Dict(c, validity) => {
                Column::Utf8(c.dict.gather(&c.codes), validity.clone())
            }
            Column::Rle(r) => {
                let plain = r.values.decode();
                let runs = r.num_runs();
                let mut idx: Vec<u32> = Vec::with_capacity(r.len());
                for k in 0..runs {
                    let (s, e) = r.run_bounds(k);
                    idx.extend(std::iter::repeat_n(k as u32, e - s));
                }
                let expanded = plain.take_unchecked(&idx);
                // Normalize the validity shape: run-level nulls expand
                // to a row-level mask only when nulls exist.
                match expanded.count_null() {
                    0 => expanded.with_validity(None),
                    _ => expanded,
                }
            }
            other => other.clone(),
        }
    }

    /// The column viewed in plain representation: borrows `self` when it
    /// is already plain, decodes otherwise. Kernels use this as the
    /// universal fallback when no encoded fast path applies; each real
    /// decode is recorded in [`crate::encoding`]'s fallback counter (the
    /// zero-decode acceptance tests key off it).
    pub(crate) fn decoded(&self) -> std::borrow::Cow<'_, Column> {
        if self.is_encoded() {
            crate::encoding::global().record_decode_fallback();
            std::borrow::Cow::Owned(self.decode())
        } else {
            std::borrow::Cow::Borrowed(self)
        }
    }

    /// Like [`decoded`](Self::decoded), but only expands run-length
    /// columns: kernels with dictionary fast paths (group-by, join, sort
    /// keying) call this so `Dict` flows through untouched while `Rle`
    /// falls back to plain rows.
    pub(crate) fn rle_decoded(&self) -> std::borrow::Cow<'_, Column> {
        if matches!(self, Column::Rle(_)) {
            crate::encoding::global().record_decode_fallback();
            std::borrow::Cow::Owned(self.decode())
        } else {
            std::borrow::Cow::Borrowed(self)
        }
    }

    /// Iterate rows as scalars.
    pub fn iter(&self) -> impl Iterator<Item = Scalar> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Bool column flagging null rows (pandas `isna`).
    pub fn is_null_mask(&self) -> Bitmap {
        Bitmap::from_iter((0..self.len()).map(|i| self.is_null_at(i)))
    }

    // -- selection kernels ----------------------------------------------

    /// Keep rows where `mask` is set. Compaction runs straight off the
    /// mask words — no index vector is materialized.
    pub fn filter(&self, mask: &Bitmap) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(ColumnarError::LengthMismatch {
                left: self.len(),
                right: mask.len(),
            });
        }
        let n = mask.count_set();
        let validity = self.validity().map(|v| v.filter(mask));
        Ok(match self {
            // Fixed-width lanes compact run-at-a-time: each maximal run
            // of surviving rows is one slice memcpy, and all-set mask
            // words are consumed 64 rows per step.
            Column::Int64(data, _) => {
                let mut out = Vec::with_capacity(n);
                mask.for_each_set_run(|s, l| out.extend_from_slice(&data[s..s + l]));
                Column::Int64(out, validity)
            }
            Column::Float64(data, _) => {
                let mut out = Vec::with_capacity(n);
                mask.for_each_set_run(|s, l| out.extend_from_slice(&data[s..s + l]));
                Column::Float64(out, validity)
            }
            Column::Bool(data, _) => Column::Bool(data.filter(mask), validity),
            // Arena compaction: contiguous kept runs copy their bytes in
            // one extend_from_slice, no per-row refcount traffic.
            Column::Utf8(data, _) => Column::Utf8(data.filter(mask), validity),
            Column::Datetime(data, _) => {
                let mut out = Vec::with_capacity(n);
                mask.for_each_set_run(|s, l| out.extend_from_slice(&data[s..s + l]));
                Column::Datetime(out, validity)
            }
            Column::Categorical(c, _) | Column::Dict(c, _) => {
                let mut codes = Vec::with_capacity(n);
                mask.for_each_set_run(|s, l| codes.extend_from_slice(&c.codes[s..s + l]));
                let payload = Categorical {
                    codes,
                    dict: Arc::clone(&c.dict),
                };
                match self {
                    Column::Dict(..) => Column::Dict(payload, validity),
                    _ => Column::Categorical(payload, validity),
                }
            }
            // Run-aligned compaction: size each surviving run with one
            // popcount per touched mask word, never visiting rows.
            Column::Rle(r) => {
                let mut kept_runs = Bitmap::new(r.num_runs(), false);
                let mut ends: Vec<u32> = Vec::new();
                let mut total = 0u32;
                for k in 0..r.num_runs() {
                    let (s, e) = r.run_bounds(k);
                    let cnt = mask.count_range(s, e) as u32;
                    if cnt > 0 {
                        kept_runs.set(k, true);
                        total += cnt;
                        ends.push(total);
                    }
                }
                let values = r.values.filter(&kept_runs)?;
                Column::Rle(RleCol {
                    values: Box::new(values),
                    ends,
                })
            }
        })
    }

    /// Gather rows at `indices` (must be in bounds).
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(ColumnarError::InvalidArgument(format!(
                "take index {bad} out of bounds for column of length {len}"
            )));
        }
        Ok(self.take_unchecked(indices))
    }

    /// `take` without the bounds scan, for callers whose indices are in
    /// bounds by construction (join assembly over computed row ids).
    /// Generic over the index width — joins pass `u32` row ids.
    pub(crate) fn take_unchecked<I: IndexLike>(&self, indices: &[I]) -> Column {
        let validity = self.validity().map(|v| v.take_idx(indices));
        match self {
            Column::Int64(data, _) => {
                Column::Int64(indices.iter().map(|&i| data[i.idx()]).collect(), validity)
            }
            Column::Float64(data, _) => {
                Column::Float64(indices.iter().map(|&i| data[i.idx()]).collect(), validity)
            }
            Column::Bool(data, _) => Column::Bool(data.take_idx(indices), validity),
            // Offset-range memcpys; ascending runs (join assembly)
            // collapse to single byte-range copies — see Utf8Col::gather.
            Column::Utf8(data, _) => Column::Utf8(data.gather(indices), validity),
            Column::Datetime(data, _) => {
                Column::Datetime(indices.iter().map(|&i| data[i.idx()]).collect(), validity)
            }
            Column::Categorical(c, _) | Column::Dict(c, _) => {
                let payload = Categorical {
                    codes: indices.iter().map(|&i| c.codes[i.idx()]).collect(),
                    dict: Arc::clone(&c.dict),
                };
                match self {
                    Column::Dict(..) => Column::Dict(payload, validity),
                    _ => Column::Categorical(payload, validity),
                }
            }
            // Random gathers destroy run structure: map each index to
            // its run and gather from the (small) run values column.
            // Output is plain, proportional to the index count.
            Column::Rle(r) => {
                let run_idx: Vec<usize> = indices.iter().map(|&i| r.run_of(i.idx())).collect();
                let gathered = r.values.decode().take_unchecked(&run_idx);
                match gathered.count_null() {
                    0 => gathered.with_validity(None),
                    _ => gathered,
                }
            }
        }
    }

    /// Contiguous row range `[offset, offset + len)`, clamped to the
    /// column length. Slices the underlying buffers directly — O(len)
    /// memcpy-style copies, no index vector, no per-row work — so `head(n)`
    /// no longer costs O(column length).
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        let start = offset.min(self.len());
        let end = offset.saturating_add(len).min(self.len());
        let n = end - start;
        let validity = self.validity().map(|v| v.slice(start, n));
        match self {
            Column::Int64(data, _) => Column::Int64(data[start..end].to_vec(), validity),
            Column::Float64(data, _) => Column::Float64(data[start..end].to_vec(), validity),
            Column::Bool(data, _) => Column::Bool(data.slice(start, n), validity),
            // Zero-copy: the arena is shared, only the offset window moves.
            Column::Utf8(data, _) => Column::Utf8(data.slice(start, n), validity),
            Column::Datetime(data, _) => Column::Datetime(data[start..end].to_vec(), validity),
            Column::Categorical(c, _) | Column::Dict(c, _) => {
                let payload = Categorical {
                    codes: c.codes[start..end].to_vec(),
                    dict: Arc::clone(&c.dict),
                };
                match self {
                    Column::Dict(..) => Column::Dict(payload, validity),
                    _ => Column::Categorical(payload, validity),
                }
            }
            // Clip the run list to the window: O(runs-in-window), with
            // the (small) values column sliced to the same run range.
            Column::Rle(r) => {
                if n == 0 {
                    return Column::Rle(RleCol {
                        values: Box::new(r.values.slice(0, 0)),
                        ends: Vec::new(),
                    });
                }
                let lo = r.run_of(start);
                let hi = r.run_of(end - 1);
                let ends = (lo..=hi)
                    .map(|k| ((r.ends[k] as usize).min(end) - start) as u32)
                    .collect();
                Column::Rle(RleCol {
                    values: Box::new(r.values.slice(lo, hi - lo + 1)),
                    ends,
                })
            }
        }
    }

    /// Concatenate two same-dtype columns (categoricals are re-encoded).
    pub fn concat(&self, other: &Column) -> Result<Column> {
        if self.dtype() != other.dtype() {
            return Err(ColumnarError::TypeMismatch {
                op: format!("concat with {}", other.dtype()),
                dtype: self.dtype().to_string(),
            });
        }
        let total = self.len() + other.len();
        // Null slots are normalized to the builder's sentinel values
        // (0 / NaN / "") so the typed path is bit-identical to the old
        // scalar-at-a-time builder loop.
        let has_null = self.count_null() + other.count_null() > 0;
        let validity = has_null.then(|| {
            Bitmap::from_iter(
                (0..self.len())
                    .map(|i| !self.is_null_at(i))
                    .chain((0..other.len()).map(|i| !other.is_null_at(i))),
            )
        });
        Ok(match (self, other) {
            (Column::Int64(a, _), Column::Int64(b, _)) => {
                let mut out = Vec::with_capacity(total);
                out.extend(a.iter().enumerate().map(|(i, &v)| if self.is_null_at(i) { 0 } else { v }));
                out.extend(b.iter().enumerate().map(|(i, &v)| if other.is_null_at(i) { 0 } else { v }));
                Column::Int64(out, validity)
            }
            (Column::Datetime(a, _), Column::Datetime(b, _)) => {
                let mut out = Vec::with_capacity(total);
                out.extend(a.iter().enumerate().map(|(i, &v)| if self.is_null_at(i) { 0 } else { v }));
                out.extend(b.iter().enumerate().map(|(i, &v)| if other.is_null_at(i) { 0 } else { v }));
                Column::Datetime(out, validity)
            }
            (Column::Float64(a, _), Column::Float64(b, _)) => {
                let mut out = Vec::with_capacity(total);
                out.extend(a.iter().enumerate().map(|(i, &v)| if self.is_null_at(i) { f64::NAN } else { v }));
                out.extend(b.iter().enumerate().map(|(i, &v)| if other.is_null_at(i) { f64::NAN } else { v }));
                Column::Float64(out, validity)
            }
            (Column::Bool(a, _), Column::Bool(b, _)) => {
                let mut bits = Bitmap::empty();
                for i in 0..a.len() {
                    bits.push(!self.is_null_at(i) && a.get(i));
                }
                for i in 0..b.len() {
                    bits.push(!other.is_null_at(i) && b.get(i));
                }
                Column::Bool(bits, validity)
            }
            (Column::Utf8(a, _), Column::Utf8(b, _)) => {
                let mut out =
                    Utf8Builder::with_capacity(total, a.value_bytes() + b.value_bytes());
                for (side, col) in [(self, a), (other, b)] {
                    if side.count_null() == 0 {
                        // Dense side: one bulk copy of its used byte range.
                        out.append_col(col);
                    } else {
                        for (i, v) in col.iter().enumerate() {
                            out.push(if side.is_null_at(i) { "" } else { v });
                        }
                    }
                }
                Column::Utf8(out.finish(), validity)
            }
            // Dict + Dict: unify dictionaries without touching row data.
            // The left dictionary is kept verbatim; right-side entries
            // not already present append in right-dict order, and right
            // codes remap through a translation table — so per-chunk
            // dictionaries built by the parallel CSV reader unify into
            // exactly the dictionary a sequential first-appearance scan
            // would have produced.
            (Column::Dict(a, _), Column::Dict(b, _)) => {
                let mut union = Utf8Builder::with_capacity(
                    a.dict.len() + b.dict.len(),
                    a.dict.value_bytes() + b.dict.value_bytes(),
                );
                let mut index: std::collections::HashMap<&[u8], u32> =
                    std::collections::HashMap::with_capacity(a.dict.len() + b.dict.len());
                for e in 0..a.dict.len() {
                    union.push(a.dict.get(e));
                    index.insert(a.dict.bytes_at(e), e as u32);
                }
                let mut next = a.dict.len() as u32;
                let remap: Vec<u32> = (0..b.dict.len())
                    .map(|e| match index.entry(b.dict.bytes_at(e)) {
                        std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            union.push(b.dict.get(e));
                            let c = next;
                            next += 1;
                            v.insert(c);
                            c
                        }
                    })
                    .collect();
                let mut codes = Vec::with_capacity(total);
                codes.extend_from_slice(&a.codes);
                codes.extend(b.codes.iter().map(|&c| remap[c as usize]));
                Column::Dict(
                    Categorical {
                        codes,
                        dict: Arc::new(union.finish()),
                    },
                    validity,
                )
            }
            // Rle + Rle of one dtype: append run lists, rebasing ends.
            (Column::Rle(a), Column::Rle(b)) => {
                let values = a.values.concat(&b.values)?;
                let base = a.len() as u32;
                let mut ends = a.ends.clone();
                ends.extend(b.ends.iter().map(|&e| base + e));
                Column::Rle(RleCol {
                    values: Box::new(values),
                    ends,
                })
            }
            // Categoricals re-encode their dictionary, and mixed
            // plain/encoded pairs materialize; keep the builder path.
            _ => {
                let mut b = ColumnBuilder::new(self.dtype());
                for s in self.iter().chain(other.iter()) {
                    b.push_scalar(&s)?;
                }
                b.finish()
            }
        })
    }

    // -- comparison / arithmetic / logic ---------------------------------

    /// Element-wise comparison against another column; null op anything is
    /// null... which for a filter mask means "excluded", so we surface the
    /// pandas behaviour of nulls comparing false.
    pub fn compare(&self, op: CmpOp, other: &Column) -> Result<Bitmap> {
        if self.len() != other.len() {
            return Err(ColumnarError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let len = self.len();
        // Typed fast paths: match the buffer pair once, then run a tight
        // loop. Null rows compare false except under `Ne` (pandas).
        let bits = match (self, other) {
            (Column::Int64(a, va), Column::Int64(b, vb)) => {
                cmp_loop(op, len, va, vb, |i| a[i].cmp(&b[i]))
            }
            (Column::Datetime(a, va), Column::Datetime(b, vb)) => {
                cmp_loop(op, len, va, vb, |i| a[i].cmp(&b[i]))
            }
            (Column::Float64(a, va), Column::Float64(b, vb)) => {
                Bitmap::from_iter((0..len).map(|i| {
                    let (x, y) = (a[i], b[i]);
                    if x.is_nan()
                        || y.is_nan()
                        || va.as_ref().is_some_and(|m| !m.get(i))
                        || vb.as_ref().is_some_and(|m| !m.get(i))
                    {
                        op == CmpOp::Ne
                    } else {
                        op.eval(x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal))
                    }
                }))
            }
            (Column::Int64(a, va), Column::Float64(b, vb)) => {
                Bitmap::from_iter((0..len).map(|i| {
                    if b[i].is_nan()
                        || va.as_ref().is_some_and(|m| !m.get(i))
                        || vb.as_ref().is_some_and(|m| !m.get(i))
                    {
                        op == CmpOp::Ne
                    } else {
                        op.eval(
                            (a[i] as f64)
                                .partial_cmp(&b[i])
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                    }
                }))
            }
            (Column::Float64(a, va), Column::Int64(b, vb)) => {
                Bitmap::from_iter((0..len).map(|i| {
                    if a[i].is_nan()
                        || va.as_ref().is_some_and(|m| !m.get(i))
                        || vb.as_ref().is_some_and(|m| !m.get(i))
                    {
                        op == CmpOp::Ne
                    } else {
                        op.eval(
                            a[i].partial_cmp(&(b[i] as f64))
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                    }
                }))
            }
            (Column::Utf8(a, va), Column::Utf8(b, vb)) => {
                cmp_loop(op, len, va, vb, |i| a.bytes_at(i).cmp(b.bytes_at(i)))
            }
            (Column::Bool(a, va), Column::Bool(b, vb)) => {
                cmp_loop(op, len, va, vb, |i| a.get(i).cmp(&b.get(i)))
            }
            // Mixed / categorical pairs fall back to the scalar loop.
            _ => Bitmap::from_iter((0..len).map(|i| {
                let (a, b) = (self.get(i), other.get(i));
                if a.is_null() || b.is_null() {
                    op == CmpOp::Ne
                } else {
                    op.eval(a.cmp_values(&b))
                }
            })),
        };
        Ok(bits)
    }

    /// Element-wise comparison against a scalar.
    pub fn compare_scalar(&self, op: CmpOp, rhs: &Scalar) -> Result<Bitmap> {
        // Fast paths for the hot numeric cases.
        match (self, rhs.as_f64()) {
            (Column::Int64(data, validity), Some(x)) => {
                return Ok(Bitmap::from_iter(data.iter().enumerate().map(|(i, v)| {
                    if validity.as_ref().is_some_and(|m| !m.get(i)) {
                        op == CmpOp::Ne
                    } else {
                        op.eval((*v as f64).partial_cmp(&x).unwrap())
                    }
                })))
            }
            (Column::Float64(data, validity), Some(x)) => {
                return Ok(Bitmap::from_iter(data.iter().enumerate().map(|(i, v)| {
                    let null = v.is_nan() || validity.as_ref().is_some_and(|m| !m.get(i));
                    if null {
                        op == CmpOp::Ne
                    } else {
                        match v.partial_cmp(&x) {
                            Some(ord) => op.eval(ord),
                            None => false,
                        }
                    }
                })))
            }
            _ => {}
        }
        // String fast path: compare &str directly, no Scalar per row.
        if let (Column::Utf8(data, validity), Scalar::Str(s)) = (self, rhs) {
            return Ok(Bitmap::from_iter(data.iter().enumerate().map(|(i, v)| {
                if validity.as_ref().is_some_and(|m| !m.get(i)) {
                    op == CmpOp::Ne
                } else {
                    op.eval(v.cmp(s.as_str()))
                }
            })));
        }
        // Dictionary fast path: evaluate the predicate once per distinct
        // entry into a verdict table, then answer each row with one code
        // lookup — O(dict + rows) instead of O(rows) comparisons.
        if let Column::Dict(c, validity) = self {
            let verdicts: Vec<bool> = (0..c.dict.len())
                .map(|e| {
                    if rhs.is_null() {
                        op == CmpOp::Ne
                    } else {
                        match rhs {
                            Scalar::Str(s) => op.eval(c.dict.get(e).cmp(s.as_str())),
                            other => op.eval(Scalar::Str(c.dict.get(e).to_string()).cmp_values(other)),
                        }
                    }
                })
                .collect();
            return Ok(Bitmap::from_iter(c.codes.iter().enumerate().map(
                |(i, &code)| {
                    if validity.as_ref().is_some_and(|m| !m.get(i)) {
                        op == CmpOp::Ne
                    } else {
                        verdicts[code as usize]
                    }
                },
            )));
        }
        // Run fast path: one predicate evaluation per run (through the
        // values column's own scalar-compare kernel, so null and NaN
        // semantics match the decoded execution bit for bit), expanded
        // to a row mask 64 bits at a time.
        if let Column::Rle(r) = self {
            let per_run = r.values.compare_scalar(op, rhs)?;
            let mut w = crate::bitmap::BitWriter::with_capacity(r.len());
            for k in 0..r.num_runs() {
                let (s, e) = r.run_bounds(k);
                w.append_run(per_run.get(k), e - s);
            }
            return Ok(w.finish());
        }
        Ok(Bitmap::from_iter((0..self.len()).map(|i| {
            let a = self.get(i);
            if a.is_null() || rhs.is_null() {
                op == CmpOp::Ne
            } else {
                op.eval(a.cmp_values(rhs))
            }
        })))
    }

    /// Element-wise arithmetic against another column. Int/Int stays int
    /// except for `Div`, which is float like pandas.
    pub fn arith(&self, op: ArithOp, other: &Column) -> Result<Column> {
        if self.len() != other.len() {
            return Err(ColumnarError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        // A run-length operand paired with a varying column cannot keep
        // its run structure; expand it so the typed arms below see the
        // same lanes (and produce the same output dtype) as decoded
        // execution.
        if matches!(self, Column::Rle(_)) || matches!(other, Column::Rle(_)) {
            let a = self.rle_decoded();
            let b = other.rle_decoded();
            return a.arith(op, b.as_ref());
        }
        let len = self.len();
        if let (Column::Int64(a, va), Column::Int64(b, vb)) = (self, other) {
            if op != ArithOp::Div {
                return Ok(int_arith(op, a, va.as_ref(), b, vb.as_ref()));
            }
        }
        let apply = |x: f64, y: f64| match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
            ArithOp::Div => x / y,
            ArithOp::Mod => x.rem_euclid(y),
        };
        // Direct arms for the dominant float pairs: one fused loop, no
        // intermediate lane buffers. Null operands read as NaN.
        let fval = |d: &[f64], m: &Option<Bitmap>, i: usize| -> f64 {
            if m.as_ref().is_some_and(|m| !m.get(i)) {
                f64::NAN
            } else {
                d[i]
            }
        };
        let ival = |d: &[i64], m: &Option<Bitmap>, i: usize| -> f64 {
            if m.as_ref().is_some_and(|m| !m.get(i)) {
                f64::NAN
            } else {
                d[i] as f64
            }
        };
        let out: Vec<f64> = match (self, other) {
            (Column::Float64(a, va), Column::Float64(b, vb)) => (0..len)
                .map(|i| apply(fval(a, va, i), fval(b, vb, i)))
                .collect(),
            (Column::Int64(a, va), Column::Float64(b, vb)) => (0..len)
                .map(|i| apply(ival(a, va, i), fval(b, vb, i)))
                .collect(),
            (Column::Float64(a, va), Column::Int64(b, vb)) => (0..len)
                .map(|i| apply(fval(a, va, i), ival(b, vb, i)))
                .collect(),
            // Remaining numeric mixes (bool/datetime operands, int÷int) go
            // through f64 lanes with NaN in the null slots. Non-numeric
            // operands are all-NaN, the same result the old scalar loop
            // produced via `as_f64() == None`.
            _ => match (self.f64_lanes(), other.f64_lanes()) {
                (Some(a), Some(b)) => {
                    a.iter().zip(&b).map(|(&x, &y)| apply(x, y)).collect()
                }
                _ => vec![f64::NAN; len],
            },
        };
        Ok(Column::Float64(out, None))
    }

    /// The column lowered to f64 values with NaN in every null slot; `None`
    /// for non-numeric dtypes. This is the common carrier for mixed-dtype
    /// arithmetic.
    fn f64_lanes(&self) -> Option<Vec<f64>> {
        let valid = |validity: &Option<Bitmap>, i: usize| -> bool {
            validity.as_ref().is_none_or(|m| m.get(i))
        };
        match self {
            Column::Int64(data, validity) | Column::Datetime(data, validity) => Some(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if valid(validity, i) { v as f64 } else { f64::NAN })
                    .collect(),
            ),
            Column::Float64(data, validity) => Some(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if valid(validity, i) { v } else { f64::NAN })
                    .collect(),
            ),
            Column::Bool(data, validity) => Some(
                (0..data.len())
                    .map(|i| {
                        if valid(validity, i) {
                            if data.get(i) {
                                1.0
                            } else {
                                0.0
                            }
                        } else {
                            f64::NAN
                        }
                    })
                    .collect(),
            ),
            Column::Utf8(..) | Column::Categorical(..) | Column::Dict(..) => None,
            // Expand the (small) run lanes — same f64 per row as the
            // decoded column, no decode fallback.
            Column::Rle(r) => {
                let inner = r.values.f64_lanes()?;
                let mut out = Vec::with_capacity(r.len());
                for (k, &v) in inner.iter().enumerate() {
                    let (s, e) = r.run_bounds(k);
                    out.extend(std::iter::repeat_n(v, e - s));
                }
                Some(out)
            }
        }
    }

    /// Element-wise arithmetic against a scalar.
    pub fn arith_scalar(&self, op: ArithOp, rhs: &Scalar) -> Result<Column> {
        // Run fast path: apply the operator once per run and keep the
        // run structure. Element-wise ops on equal inputs give equal
        // outputs, so this is bit-identical to decoded execution.
        if let Column::Rle(r) = self {
            let values = r.values.arith_scalar(op, rhs)?;
            return Ok(Column::Rle(RleCol {
                values: Box::new(values),
                ends: r.ends.clone(),
            }));
        }
        // Fast integer path.
        if let (Column::Int64(data, validity), Some(x), false) =
            (self, rhs.as_i64(), matches!(rhs, Scalar::Datetime(_)))
        {
            if op != ArithOp::Div && !(op == ArithOp::Mod && x == 0) {
                let out: Vec<i64> = data
                    .iter()
                    .map(|&v| match op {
                        ArithOp::Add => v.wrapping_add(x),
                        ArithOp::Sub => v.wrapping_sub(x),
                        ArithOp::Mul => v.wrapping_mul(x),
                        ArithOp::Mod => v.rem_euclid(x),
                        ArithOp::Div => unreachable!(),
                    })
                    .collect();
                return Ok(Column::Int64(out, validity.clone()));
            }
        }
        let rhs_col = Column::full(self.len(), rhs);
        self.arith(op, &rhs_col)
    }

    /// Element-wise logical AND of two bool columns.
    pub fn and(&self, other: &Column) -> Result<Bitmap> {
        Ok(self.as_mask()?.and(&other.as_mask()?))
    }

    /// Element-wise logical OR of two bool columns.
    pub fn or(&self, other: &Column) -> Result<Bitmap> {
        Ok(self.as_mask()?.or(&other.as_mask()?))
    }

    /// Logical NOT of a bool column.
    pub fn invert(&self) -> Result<Bitmap> {
        Ok(self.as_mask()?.not())
    }

    /// View a bool column as a filter mask (nulls read as false).
    pub fn as_mask(&self) -> Result<Bitmap> {
        match self {
            Column::Bool(bits, validity) => Ok(match validity {
                Some(v) => bits.and(v),
                None => bits.clone(),
            }),
            // Run-expand the values column's mask (errors with the run
            // dtype's name for non-bool lanes, same as decoded).
            Column::Rle(r) => {
                let run_mask = r.values.as_mask()?;
                let mut w = crate::bitmap::BitWriter::with_capacity(r.len());
                for k in 0..r.num_runs() {
                    let (s, e) = r.run_bounds(k);
                    w.append_run(run_mask.get(k), e - s);
                }
                Ok(w.finish())
            }
            _ => Err(ColumnarError::TypeMismatch {
                op: "as_mask".into(),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    // -- unary kernels ---------------------------------------------------

    /// Absolute value (numeric columns).
    pub fn abs(&self) -> Result<Column> {
        match self {
            Column::Int64(v, m) => Ok(Column::Int64(
                v.iter().map(|x| x.wrapping_abs()).collect(),
                m.clone(),
            )),
            Column::Float64(v, m) => {
                Ok(Column::Float64(v.iter().map(|x| x.abs()).collect(), m.clone()))
            }
            Column::Rle(r) => Ok(Column::Rle(RleCol {
                values: Box::new(r.values.abs()?),
                ends: r.ends.clone(),
            })),
            _ => Err(ColumnarError::TypeMismatch {
                op: "abs".into(),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    /// Round to `digits` decimal places (floats; ints pass through).
    pub fn round(&self, digits: i32) -> Result<Column> {
        match self {
            Column::Float64(v, m) => {
                let p = 10f64.powi(digits);
                Ok(Column::Float64(
                    v.iter().map(|x| (x * p).round() / p).collect(),
                    m.clone(),
                ))
            }
            Column::Int64(..) => Ok(self.clone()),
            Column::Rle(r) => Ok(Column::Rle(RleCol {
                values: Box::new(r.values.round(digits)?),
                ends: r.ends.clone(),
            })),
            _ => Err(ColumnarError::TypeMismatch {
                op: "round".into(),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    /// Replace nulls with `fill` (pandas `fillna`).
    pub fn fillna(&self, fill: &Scalar) -> Result<Column> {
        // No nulls: nothing to fill. Reproduce the builder's output shape
        // (validity dropped) without touching any row.
        if !matches!(self, Column::Categorical(..)) && self.count_null() == 0 {
            return Ok(self.with_validity(None));
        }
        let coerced = match cast_scalar(fill, self.dtype()) {
            Some(s) => s,
            None if matches!(self, Column::Categorical(..)) => Scalar::Null, // builder reports below
            None => {
                return Err(ColumnarError::ParseError {
                    value: fill.to_string(),
                    dtype: self.dtype().to_string(),
                    line: None,
                })
            }
        };
        match (self, &coerced) {
            (Column::Int64(data, _), Scalar::Int(fv)) => Ok(Column::Int64(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { *fv } else { v })
                    .collect(),
                None,
            )),
            (Column::Datetime(data, _), Scalar::Datetime(fv)) => Ok(Column::Datetime(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { *fv } else { v })
                    .collect(),
                None,
            )),
            (Column::Float64(data, _), Scalar::Float(fv)) => Ok(Column::Float64(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { *fv } else { v })
                    .collect(),
                None,
            )),
            (Column::Bool(data, _), Scalar::Bool(fv)) => Ok(Column::Bool(
                Bitmap::from_iter(
                    (0..data.len()).map(|i| if self.is_null_at(i) { *fv } else { data.get(i) }),
                ),
                None,
            )),
            (Column::Utf8(data, _), Scalar::Str(fv)) => {
                let mut out = Utf8Builder::with_capacity(data.len(), data.value_bytes());
                for (i, v) in data.iter().enumerate() {
                    out.push(if self.is_null_at(i) { fv.as_str() } else { v });
                }
                Ok(Column::Utf8(out.finish(), None))
            }
            // Null fill, or categorical (re-encodes): builder fallback.
            _ => {
                let mut b = ColumnBuilder::new(self.dtype());
                for i in 0..self.len() {
                    if self.is_null_at(i) {
                        b.push_scalar(fill)?;
                    } else {
                        b.push_scalar(&self.get(i))?;
                    }
                }
                Ok(b.finish())
            }
        }
    }

    /// The same data with a different validity mask (internal helper for
    /// null-normalizing fast paths).
    fn with_validity(&self, validity: Option<Bitmap>) -> Column {
        match self {
            Column::Int64(d, _) => Column::Int64(d.clone(), validity),
            Column::Float64(d, _) => Column::Float64(d.clone(), validity),
            Column::Bool(d, _) => Column::Bool(d.clone(), validity),
            Column::Utf8(d, _) => Column::Utf8(d.clone(), validity),
            Column::Datetime(d, _) => Column::Datetime(d.clone(), validity),
            Column::Categorical(c, _) => Column::Categorical(c.clone(), validity),
            Column::Dict(c, _) => Column::Dict(c.clone(), validity),
            // Rle keeps nulls at run granularity; attaching a row-level
            // mask forces materialization.
            Column::Rle(r) => match validity {
                None => Column::Rle(r.clone()),
                some => self.decode().with_validity(some),
            },
        }
    }

    /// Cast to `target` dtype (pandas `astype`).
    pub fn cast(&self, target: DType) -> Result<Column> {
        if self.dtype() == target {
            return Ok(self.clone());
        }
        if target == DType::Categorical {
            return self.to_categorical();
        }
        // Typed numeric↔numeric and string-parse paths; anything else
        // (formatting to strings, bool parsing, datetime strings) keeps the
        // scalar builder loop, whose per-row cost is inherent to the
        // conversion.
        let validity = || self.normalized_validity();
        match (self, target) {
            (Column::Int64(data, _), DType::Float64) => Ok(Column::Float64(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { f64::NAN } else { v as f64 })
                    .collect(),
                validity(),
            )),
            (Column::Int64(data, _), DType::Datetime) => {
                Ok(Column::Datetime(data.clone(), validity()))
            }
            (Column::Datetime(data, _), DType::Int64) => {
                Ok(Column::Int64(data.clone(), validity()))
            }
            (Column::Datetime(data, _), DType::Float64) => Ok(Column::Float64(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { f64::NAN } else { v as f64 })
                    .collect(),
                validity(),
            )),
            (Column::Float64(data, _), DType::Int64) => Ok(Column::Int64(
                data.iter()
                    .enumerate()
                    .map(|(i, &v)| if self.is_null_at(i) { 0 } else { v as i64 })
                    .collect(),
                validity(),
            )),
            (Column::Bool(data, _), DType::Int64) => Ok(Column::Int64(
                (0..data.len())
                    .map(|i| if self.is_null_at(i) { 0 } else { i64::from(data.get(i)) })
                    .collect(),
                validity(),
            )),
            (Column::Bool(data, _), DType::Float64) => Ok(Column::Float64(
                (0..data.len())
                    .map(|i| {
                        if self.is_null_at(i) {
                            f64::NAN
                        } else if data.get(i) {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect(),
                validity(),
            )),
            (Column::Utf8(data, _), DType::Int64) => {
                let mut out = Vec::with_capacity(data.len());
                for (i, v) in data.iter().enumerate() {
                    if self.is_null_at(i) {
                        out.push(0);
                    } else {
                        out.push(v.trim().parse().map_err(|_| ColumnarError::ParseError {
                            value: v.to_string(),
                            dtype: target.to_string(),
                            line: None,
                        })?);
                    }
                }
                Ok(Column::Int64(out, validity()))
            }
            (Column::Utf8(data, _), DType::Float64) => {
                let mut out = Vec::with_capacity(data.len());
                for (i, v) in data.iter().enumerate() {
                    if self.is_null_at(i) {
                        out.push(f64::NAN);
                    } else {
                        out.push(v.trim().parse().map_err(|_| ColumnarError::ParseError {
                            value: v.to_string(),
                            dtype: target.to_string(),
                            line: None,
                        })?);
                    }
                }
                Ok(Column::Float64(out, validity()))
            }
            _ => {
                let mut b = ColumnBuilder::new(target);
                for i in 0..self.len() {
                    let s = self.get(i);
                    let converted =
                        cast_scalar(&s, target).ok_or_else(|| ColumnarError::ParseError {
                            value: s.to_string(),
                            dtype: target.to_string(),
                            line: None,
                        })?;
                    b.push_scalar(&converted)?;
                }
                Ok(b.finish())
            }
        }
    }

    /// `Some(valid-bits)` when the column has nulls, `None` otherwise —
    /// the shape the scalar builder produces, with float NaN folded in.
    fn normalized_validity(&self) -> Option<Bitmap> {
        if self.count_null() == 0 {
            None
        } else {
            Some(Bitmap::from_iter((0..self.len()).map(|i| !self.is_null_at(i))))
        }
    }

    /// Dictionary-encode a string column: distinct values land in a
    /// (small) arena-backed dictionary, rows become `u32` codes.
    pub fn to_categorical(&self) -> Result<Column> {
        match self {
            Column::Utf8(values, validity) => {
                let mut dict = Utf8Builder::new();
                let mut index: std::collections::HashMap<String, u32> =
                    std::collections::HashMap::new();
                let mut codes = Vec::with_capacity(values.len());
                for v in values.iter() {
                    let code = match index.get(v) {
                        Some(&c) => c,
                        None => {
                            let c = index.len() as u32;
                            dict.push(v);
                            index.insert(v.to_string(), c);
                            c
                        }
                    };
                    codes.push(code);
                }
                Ok(Column::Categorical(
                    Categorical {
                        codes,
                        dict: Arc::new(dict.finish()),
                    },
                    validity.clone(),
                ))
            }
            Column::Categorical(..) => Ok(self.clone()),
            // Already dictionary-encoded: rebadge the same payload.
            Column::Dict(c, validity) => {
                Ok(Column::Categorical(c.clone(), validity.clone()))
            }
            Column::Rle(_) if self.dtype() == DType::Utf8 => self.decoded().to_categorical(),
            _ => Err(ColumnarError::TypeMismatch {
                op: "astype(category)".into(),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    /// Decode a categorical back to plain strings (no-op for Utf8).
    pub fn to_utf8(&self) -> Result<Column> {
        match self {
            Column::Categorical(c, validity) => {
                // Each row copies its dictionary entry's bytes into the
                // new arena (the dict is the only byte source).
                let mut out = Utf8Builder::with_capacity(
                    c.codes.len(),
                    c.codes.len() * c.dict.avg_row_bytes(),
                );
                for &code in &c.codes {
                    out.push(c.dict.get(code as usize));
                }
                Ok(Column::Utf8(out.finish(), validity.clone()))
            }
            Column::Utf8(..) => Ok(self.clone()),
            // Dict decode is one run-collapsing gather off the dictionary.
            Column::Dict(..) => Ok(self.decode()),
            Column::Rle(_) if self.dtype() == DType::Utf8 => Ok(self.decode()),
            _ => Err(ColumnarError::TypeMismatch {
                op: "to_utf8".into(),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    /// Datetime field accessor (`.dt.<field>`), producing Int64.
    pub fn dt_field(&self, field: DtField) -> Result<Column> {
        match self {
            Column::Datetime(values, validity) => {
                let out: Vec<i64> = values
                    .iter()
                    .map(|&secs| {
                        let days = secs.div_euclid(86_400);
                        let (y, m, d) = value::civil_from_days(days);
                        match field {
                            DtField::DayOfWeek => value::dayofweek(secs),
                            DtField::Hour => secs.rem_euclid(86_400) / 3600,
                            DtField::Day => d as i64,
                            DtField::Month => m as i64,
                            DtField::Year => y,
                        }
                    })
                    .collect();
                Ok(Column::Int64(out, validity.clone()))
            }
            // Compute the accessor once per run; the output stays RLE.
            Column::Rle(r) => Ok(Column::Rle(RleCol {
                values: Box::new(r.values.dt_field(field)?),
                ends: r.ends.clone(),
            })),
            _ => Err(ColumnarError::TypeMismatch {
                op: format!("dt.{field:?}"),
                dtype: self.dtype().to_string(),
            }),
        }
    }

    /// String accessor (`.str.<op>`).
    pub fn str_op(&self, op: &StrOp) -> Result<Column> {
        // Dictionary fast path: evaluate the op once per distinct entry
        // instead of once per row. Case transforms keep the dictionary
        // encoding (re-deduplicated, since e.g. "A" and "a" collide
        // after lowering); predicates and lengths expand a per-entry
        // table through the codes.
        if let Column::Dict(c, validity) = self {
            return Ok(match op {
                StrOp::Lower | StrOp::Upper => {
                    let transform = |s: &str| -> String {
                        if matches!(op, StrOp::Lower) {
                            s.to_lowercase()
                        } else {
                            s.to_uppercase()
                        }
                    };
                    let mut dict = Utf8Builder::with_capacity(c.dict.len(), c.dict.value_bytes());
                    let mut index: std::collections::HashMap<String, u32> =
                        std::collections::HashMap::with_capacity(c.dict.len());
                    let mut remap = Vec::with_capacity(c.dict.len());
                    for e in 0..c.dict.len() {
                        let t = transform(c.dict.get(e));
                        let next = index.len() as u32;
                        let code = *index.entry(t.clone()).or_insert_with(|| {
                            dict.push(&t);
                            next
                        });
                        remap.push(code);
                    }
                    Column::Dict(
                        Categorical {
                            codes: c.codes.iter().map(|&code| remap[code as usize]).collect(),
                            dict: Arc::new(dict.finish()),
                        },
                        validity.clone(),
                    )
                }
                StrOp::Len => {
                    let table: Vec<i64> = (0..c.dict.len())
                        .map(|e| c.dict.get(e).chars().count() as i64)
                        .collect();
                    Column::Int64(
                        c.codes.iter().map(|&code| table[code as usize]).collect(),
                        validity.clone(),
                    )
                }
                StrOp::Contains(pat) => {
                    let table: Vec<bool> = (0..c.dict.len())
                        .map(|e| c.dict.get(e).contains(pat.as_str()))
                        .collect();
                    Column::Bool(
                        Bitmap::from_iter(c.codes.iter().map(|&code| table[code as usize])),
                        validity.clone(),
                    )
                }
                StrOp::StartsWith(pat) => {
                    let table: Vec<bool> = (0..c.dict.len())
                        .map(|e| c.dict.get(e).starts_with(pat.as_str()))
                        .collect();
                    Column::Bool(
                        Bitmap::from_iter(c.codes.iter().map(|&code| table[code as usize])),
                        validity.clone(),
                    )
                }
            });
        }
        let utf8 = match self {
            Column::Utf8(..) | Column::Categorical(..) => self.to_utf8()?,
            Column::Rle(_) if self.dtype() == DType::Utf8 => self.decoded().to_utf8()?,
            _ => {
                return Err(ColumnarError::TypeMismatch {
                    op: format!("str.{op:?}"),
                    dtype: self.dtype().to_string(),
                })
            }
        };
        let (values, validity) = match utf8 {
            Column::Utf8(v, m) => (v, m),
            _ => unreachable!(),
        };
        Ok(match op {
            StrOp::Lower => {
                let mut out = Utf8Builder::with_capacity(values.len(), values.value_bytes());
                for s in values.iter() {
                    out.push(&s.to_lowercase());
                }
                Column::Utf8(out.finish(), validity)
            }
            StrOp::Upper => {
                let mut out = Utf8Builder::with_capacity(values.len(), values.value_bytes());
                for s in values.iter() {
                    out.push(&s.to_uppercase());
                }
                Column::Utf8(out.finish(), validity)
            }
            StrOp::Len => Column::Int64(
                values.iter().map(|s| s.chars().count() as i64).collect(),
                validity,
            ),
            StrOp::Contains(pat) => Column::Bool(
                Bitmap::from_iter(values.iter().map(|s| s.contains(pat.as_str()))),
                validity,
            ),
            StrOp::StartsWith(pat) => Column::Bool(
                Bitmap::from_iter(values.iter().map(|s| s.starts_with(pat.as_str()))),
                validity,
            ),
        })
    }

    // -- reductions --------------------------------------------------------

    /// Sum of non-null values (int columns sum to int, others to float).
    pub fn sum(&self) -> Scalar {
        match self {
            Column::Int64(v, validity) => {
                let mut acc = 0i64;
                match validity {
                    None => {
                        for val in v {
                            acc = acc.wrapping_add(*val);
                        }
                    }
                    Some(m) => {
                        for (i, val) in v.iter().enumerate() {
                            if m.get(i) {
                                acc = acc.wrapping_add(*val);
                            }
                        }
                    }
                }
                Scalar::Int(acc)
            }
            Column::Float64(v, validity) => {
                let mut acc = 0.0;
                let mut any = false;
                for (i, &x) in v.iter().enumerate() {
                    if !x.is_nan() && validity.as_ref().is_none_or(|m| m.get(i)) {
                        acc += x;
                        any = true;
                    }
                }
                if any {
                    Scalar::Float(acc)
                } else {
                    Scalar::Null
                }
            }
            Column::Datetime(v, validity) => {
                let mut acc = 0.0;
                let mut any = false;
                for (i, &x) in v.iter().enumerate() {
                    if validity.as_ref().is_none_or(|m| m.get(i)) {
                        acc += x as f64;
                        any = true;
                    }
                }
                if any {
                    Scalar::Float(acc)
                } else {
                    Scalar::Null
                }
            }
            Column::Bool(v, validity) => {
                let mut acc = 0.0;
                let mut any = false;
                for i in 0..v.len() {
                    if validity.as_ref().is_none_or(|m| m.get(i)) {
                        acc += if v.get(i) { 1.0 } else { 0.0 };
                        any = true;
                    }
                }
                if any {
                    Scalar::Float(acc)
                } else {
                    Scalar::Null
                }
            }
            // Strings have no numeric view: the old loop skipped every row.
            Column::Utf8(..) | Column::Categorical(..) | Column::Dict(..) => Scalar::Null,
            // Integer runs sum exactly as value × width (wrapping
            // multiplication ≡ repeated wrapping addition mod 2⁶⁴).
            // Float/bool/datetime sums accumulate in f64, where addition
            // order matters — decode so the result stays bit-identical
            // to plain execution.
            Column::Rle(r) => match &*r.values {
                Column::Int64(vals, _) => {
                    let mut acc = 0i64;
                    for (k, &v) in vals.iter().enumerate() {
                        if !r.values.is_null_at(k) {
                            let (s, e) = r.run_bounds(k);
                            acc = acc.wrapping_add(v.wrapping_mul((e - s) as i64));
                        }
                    }
                    Scalar::Int(acc)
                }
                _ => self.decoded().sum(),
            },
        }
    }

    /// Mean of non-null values.
    pub fn mean(&self) -> Scalar {
        let n = self.count_valid();
        if n == 0 {
            return Scalar::Null;
        }
        match self.sum() {
            Scalar::Int(s) => Scalar::Float(s as f64 / n as f64),
            Scalar::Float(s) => Scalar::Float(s / n as f64),
            _ => Scalar::Null,
        }
    }

    /// Minimum non-null value.
    pub fn min(&self) -> Scalar {
        self.extreme(true)
    }

    /// Maximum non-null value.
    pub fn max(&self) -> Scalar {
        self.extreme(false)
    }

    /// Typed min/max: fold over the raw buffer, skipping nulls.
    fn extreme(&self, want_min: bool) -> Scalar {
        fn fold<T: Copy, S>(
            items: impl Iterator<Item = T>,
            better: impl Fn(T, T) -> bool,
            wrap: impl Fn(T) -> S,
        ) -> Option<S> {
            let mut best: Option<T> = None;
            for v in items {
                best = Some(match best {
                    Some(b) if !better(v, b) => b,
                    _ => v,
                });
            }
            best.map(wrap)
        }
        let valid = |validity: &Option<Bitmap>, i: usize| -> bool {
            validity.as_ref().is_none_or(|m| m.get(i))
        };
        match self {
            Column::Int64(v, m) => fold(
                v.iter()
                    .enumerate()
                    .filter(|(i, _)| valid(m, *i))
                    .map(|(_, &x)| x),
                |a, b| if want_min { a < b } else { a > b },
                Scalar::Int,
            )
            .unwrap_or(Scalar::Null),
            Column::Datetime(v, m) => fold(
                v.iter()
                    .enumerate()
                    .filter(|(i, _)| valid(m, *i))
                    .map(|(_, &x)| x),
                |a, b| if want_min { a < b } else { a > b },
                Scalar::Datetime,
            )
            .unwrap_or(Scalar::Null),
            Column::Float64(v, m) => fold(
                v.iter()
                    .enumerate()
                    .filter(|(i, x)| valid(m, *i) && !x.is_nan())
                    .map(|(_, &x)| x),
                |a, b| if want_min { a < b } else { a > b },
                Scalar::Float,
            )
            .unwrap_or(Scalar::Null),
            Column::Bool(v, m) => fold(
                (0..v.len()).filter(|&i| valid(m, i)).map(|i| v.get(i)),
                |a, b| if want_min { !a & b } else { a & !b },
                Scalar::Bool,
            )
            .unwrap_or(Scalar::Null),
            Column::Utf8(v, m) => {
                let mut best: Option<&str> = None;
                for (i, s) in v.iter().enumerate() {
                    if !valid(m, i) {
                        continue;
                    }
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            if want_min {
                                s < b
                            } else {
                                s > b
                            }
                        }
                    };
                    if replace {
                        best = Some(s);
                    }
                }
                best.map(|s| Scalar::Str(s.to_string())).unwrap_or(Scalar::Null)
            }
            Column::Categorical(..) => {
                // Dictionary decode is cold: scalar fallback.
                let it = self.iter().filter(|s| !s.is_null());
                let best = if want_min {
                    it.min_by(|a, b| a.cmp_values(b))
                } else {
                    it.max_by(|a, b| a.cmp_values(b))
                };
                best.unwrap_or(Scalar::Null)
            }
            // The extreme over rows is the extreme over *used* dictionary
            // entries: one pass marking used codes, one pass over the
            // (small) dictionary.
            Column::Dict(c, m) => {
                let mut used = vec![false; c.dict.len()];
                match m {
                    None => {
                        for &code in &c.codes {
                            used[code as usize] = true;
                        }
                    }
                    Some(mask) => {
                        for (i, &code) in c.codes.iter().enumerate() {
                            if mask.get(i) {
                                used[code as usize] = true;
                            }
                        }
                    }
                }
                let mut best: Option<&str> = None;
                for (e, &is_used) in used.iter().enumerate() {
                    if !is_used {
                        continue;
                    }
                    let s = c.dict.get(e);
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            if want_min {
                                s < b
                            } else {
                                s > b
                            }
                        }
                    };
                    if replace {
                        best = Some(s);
                    }
                }
                best.map(|s| Scalar::Str(s.to_string())).unwrap_or(Scalar::Null)
            }
            // The extreme over runs equals the extreme over rows.
            Column::Rle(r) => r.values.extreme(want_min),
        }
    }

    /// Count of non-null values.
    pub fn count(&self) -> Scalar {
        Scalar::Int(self.count_valid() as i64)
    }

    /// Number of distinct non-null values.
    pub fn nunique(&self) -> Scalar {
        match self {
            // Distinct rows = distinct *used* codes (filters and slices
            // can leave dictionary entries with no referencing row).
            Column::Dict(c, m) => {
                let mut used = vec![false; c.dict.len()];
                for (i, &code) in c.codes.iter().enumerate() {
                    if m.as_ref().is_none_or(|mask| mask.get(i)) {
                        used[code as usize] = true;
                    }
                }
                Scalar::Int(used.iter().filter(|&&u| u).count() as i64)
            }
            // Distinct run values = distinct row values.
            Column::Rle(r) => r.values.nunique(),
            _ => {
                let mut seen = std::collections::HashSet::new();
                for s in self.iter().filter(|s| !s.is_null()) {
                    seen.insert(s.to_string());
                }
                Scalar::Int(seen.len() as i64)
            }
        }
    }

    /// Sample standard deviation (ddof = 1), pandas default.
    pub fn std(&self) -> Scalar {
        let values: Vec<f64> = (0..self.len())
            .filter(|&i| !self.is_null_at(i))
            .filter_map(|i| self.get(i).as_f64())
            .collect();
        if values.len() < 2 {
            return Scalar::Null;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        Scalar::Float(var.sqrt())
    }

    // -- hashing (group-by / join / dedup) --------------------------------

    /// Mix each row's value into the provided per-row hash accumulators
    /// (FNV-1a style). `hashes.len()` must equal `self.len()`.
    pub fn hash_into(&self, hashes: &mut [u64]) {
        debug_assert_eq!(hashes.len(), self.len());
        self.hash_range_into(0, hashes);
    }

    /// Mix rows `offset .. offset + hashes.len()` into `hashes` (slot `j`
    /// accumulates row `offset + j`). The range form lets parallel
    /// kernels hash disjoint morsels into disjoint sub-slices of one
    /// hash array.
    pub fn hash_range_into(&self, offset: usize, hashes: &mut [u64]) {
        let len = hashes.len();
        debug_assert!(offset + len <= self.len());
        let valid = |validity: &Option<Bitmap>, i: usize| -> bool {
            validity.as_ref().is_none_or(|m| m.get(i))
        };
        // Dispatch on the buffer once; every arm is a tight loop.
        let mut mix = |j: usize, v: u64| {
            let h = &mut hashes[j];
            *h = (*h ^ v).wrapping_mul(HASH_PRIME);
        };
        match self {
            Column::Int64(v, m) | Column::Datetime(v, m) => {
                for (j, &x) in v[offset..offset + len].iter().enumerate() {
                    mix(j, if valid(m, offset + j) { x as u64 } else { u64::MAX });
                }
            }
            Column::Float64(v, m) => {
                for (j, &x) in v[offset..offset + len].iter().enumerate() {
                    let null = x.is_nan() || !valid(m, offset + j);
                    mix(j, if null { u64::MAX } else { x.to_bits() });
                }
            }
            Column::Bool(v, m) => {
                for j in 0..len {
                    let i = offset + j;
                    mix(j, if valid(m, i) { v.get(i) as u64 } else { u64::MAX });
                }
            }
            Column::Utf8(v, m) => {
                // Hash straight off the arena bytes — no str conversion.
                for j in 0..len {
                    let i = offset + j;
                    mix(j, if valid(m, i) { fnv1a(v.bytes_at(i)) } else { u64::MAX });
                }
            }
            Column::Categorical(c, m) | Column::Dict(c, m) => {
                // Hash each dictionary entry once, then look codes up.
                let dict_hashes: Vec<u64> =
                    (0..c.dict.len()).map(|d| fnv1a(c.dict.bytes_at(d))).collect();
                for (j, &code) in c.codes[offset..offset + len].iter().enumerate() {
                    let i = offset + j;
                    mix(
                        j,
                        if valid(m, i) {
                            dict_hashes[code as usize]
                        } else {
                            u64::MAX
                        },
                    );
                }
            }
            Column::Rle(r) => {
                // Hash each run value once, then spread it over the run's
                // rows intersecting the requested range.
                let lo = r.run_of(offset);
                let hi = r.run_of(offset + len - 1);
                for k in lo..=hi {
                    let v = r.values.hash_lane_at(k);
                    let (s, e) = r.run_bounds(k);
                    let s = s.max(offset);
                    let e = e.min(offset + len);
                    for i in s..e {
                        mix(i - offset, v);
                    }
                }
            }
        }
    }

    /// The per-row hash lane `hash_range_into` would mix for row `i` —
    /// one value, no accumulator. Used by the RLE arm to hash each run
    /// value once.
    fn hash_lane_at(&self, i: usize) -> u64 {
        if self.is_null_at(i) {
            return u64::MAX;
        }
        match self {
            Column::Int64(v, _) | Column::Datetime(v, _) => v[i] as u64,
            Column::Float64(v, _) => v[i].to_bits(),
            Column::Bool(v, _) => v.get(i) as u64,
            Column::Utf8(v, _) => fnv1a(v.bytes_at(i)),
            Column::Categorical(c, _) | Column::Dict(c, _) => {
                fnv1a(c.dict.bytes_at(c.codes[i] as usize))
            }
            Column::Rle(r) => r.values.hash_lane_at(r.run_of(i)),
        }
    }
}

/// The FNV-1a prime — the one mixing constant every row-hash consumer
/// (`hash_into`, group-by keying, join keying) must agree on.
pub(crate) const HASH_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(HASH_PRIME);
    }
    h
}

/// Identity hasher for tables keyed by already-FNV-mixed `u64` row
/// hashes; feeding them through SipHash again would waste most of each
/// probe.
#[derive(Default)]
pub(crate) struct PreHashed(u64);

impl std::hash::Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("PreHashed only hashes u64 keys");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Hash table from a mixed row hash to the group ids sharing it, used by
/// both the group-by accumulator and the join build side.
pub(crate) type HashTable =
    std::collections::HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<PreHashed>>;

/// Comparison loop over a typed accessor for dtypes whose null state lives
/// entirely in the validity mask (ints, strings, bools, datetimes).
fn cmp_loop(
    op: CmpOp,
    len: usize,
    va: &Option<Bitmap>,
    vb: &Option<Bitmap>,
    ord: impl Fn(usize) -> std::cmp::Ordering,
) -> Bitmap {
    Bitmap::from_iter((0..len).map(|i| {
        if va.as_ref().is_some_and(|m| !m.get(i)) || vb.as_ref().is_some_and(|m| !m.get(i)) {
            op == CmpOp::Ne
        } else {
            op.eval(ord(i))
        }
    }))
}

/// Int64 ⊙ Int64 arithmetic (`Div` excluded — that promotes to float).
/// One tight loop over the raw `i64` buffers; nulls (and mod-by-zero rows)
/// produce null output slots holding 0, exactly like the old scalar loop.
fn int_arith(
    op: ArithOp,
    a: &[i64],
    va: Option<&Bitmap>,
    b: &[i64],
    vb: Option<&Bitmap>,
) -> Column {
    let len = a.len();
    let mut out = Vec::with_capacity(len);
    let mut validity = Bitmap::new(len, true);
    let mut has_null = false;
    for i in 0..len {
        let ok = va.is_none_or(|m| m.get(i))
            && vb.is_none_or(|m| m.get(i))
            && !(op == ArithOp::Mod && b[i] == 0);
        if ok {
            out.push(match op {
                ArithOp::Add => a[i].wrapping_add(b[i]),
                ArithOp::Sub => a[i].wrapping_sub(b[i]),
                ArithOp::Mul => a[i].wrapping_mul(b[i]),
                ArithOp::Mod => a[i].rem_euclid(b[i]),
                ArithOp::Div => unreachable!("Div promotes to float"),
            });
        } else {
            out.push(0);
            validity.set(i, false);
            has_null = true;
        }
    }
    Column::Int64(out, has_null.then_some(validity))
}

fn cast_scalar(s: &Scalar, target: DType) -> Option<Scalar> {
    if s.is_null() {
        return Some(Scalar::Null);
    }
    Some(match target {
        DType::Int64 => match s {
            Scalar::Int(v) => Scalar::Int(*v),
            Scalar::Float(v) => Scalar::Int(*v as i64),
            Scalar::Bool(b) => Scalar::Int(i64::from(*b)),
            Scalar::Str(t) => Scalar::Int(t.trim().parse().ok()?),
            Scalar::Datetime(v) => Scalar::Int(*v),
            Scalar::Null => unreachable!(),
        },
        DType::Float64 => Scalar::Float(match s {
            Scalar::Str(t) => t.trim().parse().ok()?,
            other => other.as_f64()?,
        }),
        DType::Bool => match s {
            Scalar::Bool(b) => Scalar::Bool(*b),
            Scalar::Int(v) => Scalar::Bool(*v != 0),
            Scalar::Float(v) => Scalar::Bool(*v != 0.0),
            Scalar::Str(t) => match t.trim() {
                "True" | "true" | "1" => Scalar::Bool(true),
                "False" | "false" | "0" => Scalar::Bool(false),
                _ => return None,
            },
            _ => return None,
        },
        DType::Utf8 | DType::Categorical => Scalar::Str(s.to_string()),
        DType::Datetime => match s {
            Scalar::Datetime(v) => Scalar::Datetime(*v),
            Scalar::Int(v) => Scalar::Datetime(*v),
            Scalar::Str(t) => Scalar::Datetime(value::parse_datetime(t)?),
            _ => return None,
        },
    })
}

fn some_if_has_nulls(validity: Bitmap) -> Option<Bitmap> {
    if validity.all_set() {
        None
    } else {
        Some(validity)
    }
}

/// Incremental column builder used by casts, CSV parsing and row gathers.
///
/// String pushes append bytes to a private [`Utf8Builder`] arena — no
/// per-value allocation — and [`append`](ColumnBuilder::append)
/// concatenates builders wholesale, which is how the parallel CSV
/// reader stitches per-chunk builders back together in file order.
///
/// ```
/// use lafp_columnar::column::ColumnBuilder;
/// use lafp_columnar::{DType, Scalar};
/// let mut b = ColumnBuilder::new(DType::Utf8);
/// b.push_str("hot");
/// b.push_null();
/// let col = b.finish();
/// assert_eq!(col.get(0), Scalar::Str("hot".into()));
/// assert!(col.is_null_at(1));
/// ```
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DType,
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Bitmap,
    strings: Utf8Builder,
    validity: Bitmap,
    has_null: bool,
}

impl ColumnBuilder {
    /// New builder producing a column of `dtype`.
    pub fn new(dtype: DType) -> Self {
        ColumnBuilder {
            dtype,
            ints: Vec::new(),
            floats: Vec::new(),
            bools: Bitmap::empty(),
            strings: Utf8Builder::new(),
            validity: Bitmap::empty(),
            has_null: false,
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True if no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve room for `additional` more rows (data and validity).
    pub fn reserve(&mut self, additional: usize) {
        self.validity.reserve(additional);
        match self.dtype {
            DType::Int64 | DType::Datetime => self.ints.reserve(additional),
            DType::Float64 => self.floats.reserve(additional),
            DType::Bool => self.bools.reserve(additional),
            DType::Utf8 | DType::Categorical => self.strings.reserve(additional),
        }
    }

    /// Push a null row.
    pub fn push_null(&mut self) {
        self.has_null = true;
        self.validity.push(false);
        match self.dtype {
            DType::Int64 | DType::Datetime => self.ints.push(0),
            DType::Float64 => self.floats.push(f64::NAN),
            DType::Bool => self.bools.push(false),
            DType::Utf8 | DType::Categorical => self.strings.push(""),
        }
    }

    // -- typed pushes ---------------------------------------------------
    //
    // The zero-alloc ingestion paths (CSV parsing, typed gathers) push
    // already-parsed values straight into the typed buffers; no `Scalar`
    // is boxed and no coercion runs. Each method debug-asserts the
    // builder's dtype — callers dispatch on dtype once per column, not
    // once per cell.

    /// Push an `i64` into an Int64 builder.
    #[inline]
    pub fn push_i64(&mut self, v: i64) {
        debug_assert_eq!(self.dtype, DType::Int64);
        self.validity.push(true);
        self.ints.push(v);
    }

    /// Push an epoch-second timestamp into a Datetime builder.
    #[inline]
    pub fn push_datetime(&mut self, v: i64) {
        debug_assert_eq!(self.dtype, DType::Datetime);
        self.validity.push(true);
        self.ints.push(v);
    }

    /// Push an `f64` into a Float64 builder (NaN still reads as null).
    #[inline]
    pub fn push_f64(&mut self, v: f64) {
        debug_assert_eq!(self.dtype, DType::Float64);
        self.validity.push(true);
        self.floats.push(v);
    }

    /// Push a `bool` into a Bool builder.
    #[inline]
    pub fn push_bool(&mut self, v: bool) {
        debug_assert_eq!(self.dtype, DType::Bool);
        self.validity.push(true);
        self.bools.push(v);
    }

    /// Push a string slice into a Utf8/Categorical builder: one byte
    /// append into the arena, no per-value allocation at all (the
    /// `Arc<str>` representation allocated a refcounted string here; the
    /// seed path built an intermediate `String` on top of that).
    #[inline]
    pub fn push_str(&mut self, v: &str) {
        debug_assert!(matches!(self.dtype, DType::Utf8 | DType::Categorical));
        self.validity.push(true);
        self.strings.push(v);
    }

    /// Push a scalar, coercing where safe; errors on incompatible values.
    pub fn push_scalar(&mut self, s: &Scalar) -> Result<()> {
        if s.is_null() {
            self.push_null();
            return Ok(());
        }
        let coerced = cast_scalar(s, self.dtype).ok_or_else(|| ColumnarError::ParseError {
            value: s.to_string(),
            dtype: self.dtype.to_string(),
            line: None,
        })?;
        self.validity.push(true);
        match (self.dtype, coerced) {
            (DType::Int64, Scalar::Int(v)) | (DType::Datetime, Scalar::Datetime(v)) => {
                self.ints.push(v)
            }
            (DType::Float64, Scalar::Float(v)) => self.floats.push(v),
            (DType::Bool, Scalar::Bool(v)) => self.bools.push(v),
            (DType::Utf8, Scalar::Str(v)) | (DType::Categorical, Scalar::Str(v)) => {
                self.strings.push(&v)
            }
            (dt, other) => {
                return Err(ColumnarError::ParseError {
                    value: other.to_string(),
                    dtype: dt.to_string(),
                    line: None,
                })
            }
        }
        Ok(())
    }

    /// Append every row of `other` (same dtype) after this builder's
    /// rows. Typed buffers are moved/extended wholesale — string arenas
    /// concatenate in one byte copy — which is how the parallel CSV
    /// reader concatenates per-chunk builders in file order without a
    /// per-row pass.
    pub fn append(&mut self, mut other: ColumnBuilder) {
        debug_assert_eq!(self.dtype, other.dtype, "append requires one dtype");
        self.ints.append(&mut other.ints);
        self.floats.append(&mut other.floats);
        self.bools.extend_from(&other.bools);
        self.strings.append(other.strings);
        self.validity.extend_from(&other.validity);
        self.has_null |= other.has_null;
    }

    /// Finish into a column.
    pub fn finish(self) -> Column {
        let validity = if self.has_null {
            Some(self.validity)
        } else {
            None
        };
        match self.dtype {
            DType::Int64 => Column::Int64(self.ints, validity),
            DType::Datetime => Column::Datetime(self.ints, validity),
            DType::Float64 => Column::Float64(self.floats, validity),
            DType::Bool => Column::Bool(self.bools, validity),
            DType::Utf8 => Column::Utf8(self.strings.finish(), validity),
            DType::Categorical => {
                let utf8 = Column::Utf8(self.strings.finish(), validity);
                utf8.to_categorical().expect("utf8 to categorical")
            }
        }
    }
}

impl HeapSize for Column {
    fn heap_size(&self) -> usize {
        let validity_size = self.validity().map_or(0, HeapSize::heap_size);
        validity_size
            + match self {
                Column::Int64(v, _) | Column::Datetime(v, _) => v.capacity() * 8,
                Column::Float64(v, _) => v.capacity() * 8,
                Column::Bool(v, _) => v.heap_size(),
                Column::Utf8(v, _) => v.heap_size(),
                // The dictionary is shared: slices / partitions holding
                // the same `Arc` must not each charge its full bytes
                // against a memory budget, so split it across holders.
                Column::Categorical(c, _) | Column::Dict(c, _) => {
                    let holders = std::sync::Arc::strong_count(&c.dict).max(1);
                    c.codes.capacity() * 4 + c.dict.heap_size() / holders
                }
                Column::Rle(r) => r.values.heap_size() + r.ends.capacity() * 4,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::from_i64(vec![3, 1, 4, 1, 5])
    }

    #[test]
    fn basic_accessors() {
        let c = int_col();
        assert_eq!(c.len(), 5);
        assert_eq!(c.dtype(), DType::Int64);
        assert_eq!(c.get(2), Scalar::Int(4));
        assert_eq!(c.count_valid(), 5);
    }

    #[test]
    fn nulls_in_opt_constructors() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3)]);
        assert!(c.is_null_at(1));
        assert!(!c.is_null_at(0));
        assert_eq!(c.get(1), Scalar::Null);
        assert_eq!(c.count_null(), 1);
        // NaN counts as null for floats even without a mask.
        let f = Column::from_f64(vec![1.0, f64::NAN]);
        assert!(f.is_null_at(1));
        assert_eq!(f.count_valid(), 1);
    }

    #[test]
    fn filter_take_slice() {
        let c = int_col();
        let mask = Bitmap::from_bools(&[true, false, true, false, true]);
        let filtered = c.filter(&mask).unwrap();
        assert_eq!(filtered, Column::from_i64(vec![3, 4, 5]));
        let taken = c.take(&[4, 0]).unwrap();
        assert_eq!(taken, Column::from_i64(vec![5, 3]));
        assert!(c.take(&[9]).is_err());
        assert_eq!(c.slice(1, 2), Column::from_i64(vec![1, 4]));
        assert_eq!(c.slice(4, 10).len(), 1);
    }

    #[test]
    fn compare_scalar_numeric() {
        let c = int_col();
        let mask = c.compare_scalar(CmpOp::Gt, &Scalar::Int(2)).unwrap();
        assert_eq!(mask, Bitmap::from_bools(&[true, false, true, false, true]));
        let mask = c.compare_scalar(CmpOp::Eq, &Scalar::Float(1.0)).unwrap();
        assert_eq!(
            mask,
            Bitmap::from_bools(&[false, true, false, true, false])
        );
    }

    #[test]
    fn compare_nulls_are_false() {
        let c = Column::from_opt_i64(vec![Some(1), None]);
        let m = c.compare_scalar(CmpOp::Gt, &Scalar::Int(0)).unwrap();
        assert_eq!(m, Bitmap::from_bools(&[true, false]));
        // != with null is true (pandas semantics)
        let m = c.compare_scalar(CmpOp::Ne, &Scalar::Int(0)).unwrap();
        assert_eq!(m, Bitmap::from_bools(&[true, true]));
    }

    #[test]
    fn arith_int_and_float() {
        let c = int_col();
        let sum = c.arith_scalar(ArithOp::Add, &Scalar::Int(10)).unwrap();
        assert_eq!(sum, Column::from_i64(vec![13, 11, 14, 11, 15]));
        let div = c.arith_scalar(ArithOp::Div, &Scalar::Int(2)).unwrap();
        assert_eq!(div.dtype(), DType::Float64);
        assert_eq!(div.get(0), Scalar::Float(1.5));
        let prod = c.arith(ArithOp::Mul, &int_col()).unwrap();
        assert_eq!(prod, Column::from_i64(vec![9, 1, 16, 1, 25]));
    }

    #[test]
    fn arith_null_propagates() {
        let a = Column::from_opt_i64(vec![Some(1), None]);
        let b = Column::from_i64(vec![10, 10]);
        let out = a.arith(ArithOp::Add, &b).unwrap();
        assert_eq!(out.get(0), Scalar::Int(11));
        assert!(out.is_null_at(1));
    }

    #[test]
    fn logical_ops() {
        let a = Column::from_bool(vec![true, true, false]);
        let b = Column::from_bool(vec![true, false, false]);
        assert_eq!(a.and(&b).unwrap(), Bitmap::from_bools(&[true, false, false]));
        assert_eq!(a.or(&b).unwrap(), Bitmap::from_bools(&[true, true, false]));
        assert_eq!(a.invert().unwrap(), Bitmap::from_bools(&[false, false, true]));
        assert!(int_col().as_mask().is_err());
    }

    #[test]
    fn fillna_and_round_abs() {
        let c = Column::from_opt_f64(vec![Some(1.26), None, Some(-2.74)]);
        let filled = c.fillna(&Scalar::Float(0.0)).unwrap();
        assert_eq!(filled.count_null(), 0);
        assert_eq!(filled.get(1), Scalar::Float(0.0));
        let rounded = filled.round(1).unwrap();
        assert_eq!(rounded.get(0), Scalar::Float(1.3));
        let absd = rounded.abs().unwrap();
        assert_eq!(absd.get(2), Scalar::Float(2.7));
    }

    #[test]
    fn cast_between_types() {
        let ints = int_col();
        let floats = ints.cast(DType::Float64).unwrap();
        assert_eq!(floats.get(0), Scalar::Float(3.0));
        let strs = ints.cast(DType::Utf8).unwrap();
        assert_eq!(strs.get(0), Scalar::Str("3".into()));
        let back = strs.cast(DType::Int64).unwrap();
        assert_eq!(back, ints);
        let bad = Column::from_strings(vec!["xyz"]).cast(DType::Int64);
        assert!(bad.is_err());
    }

    #[test]
    fn categorical_roundtrip_and_size() {
        let c = Column::from_strings(vec!["NY", "SF", "NY", "NY", "LA"]);
        let cat = c.to_categorical().unwrap();
        assert_eq!(cat.dtype(), DType::Categorical);
        assert_eq!(cat.get(0), Scalar::Str("NY".into()));
        assert_eq!(cat.get(4), Scalar::Str("LA".into()));
        let back = cat.to_utf8().unwrap();
        assert_eq!(back, c);
        // dictionary encoding of a repetitive column is smaller
        let many: Vec<&str> = std::iter::repeat_n("category-value", 1000).collect();
        let plain = Column::from_strings(many.clone());
        let encoded = plain.to_categorical().unwrap();
        assert!(encoded.heap_size() < plain.heap_size());
    }

    #[test]
    fn dt_accessors() {
        let ts = value::parse_datetime("2024-05-17 13:45:09").unwrap();
        let c = Column::from_datetimes(vec![ts]);
        assert_eq!(c.dt_field(DtField::Year).unwrap().get(0), Scalar::Int(2024));
        assert_eq!(c.dt_field(DtField::Month).unwrap().get(0), Scalar::Int(5));
        assert_eq!(c.dt_field(DtField::Day).unwrap().get(0), Scalar::Int(17));
        assert_eq!(c.dt_field(DtField::Hour).unwrap().get(0), Scalar::Int(13));
        // 2024-05-17 was a Friday => 4
        assert_eq!(
            c.dt_field(DtField::DayOfWeek).unwrap().get(0),
            Scalar::Int(4)
        );
        assert!(int_col().dt_field(DtField::Year).is_err());
    }

    #[test]
    fn str_accessors() {
        let c = Column::from_strings(vec!["Hello", "world"]);
        assert_eq!(
            c.str_op(&StrOp::Lower).unwrap().get(0),
            Scalar::Str("hello".into())
        );
        assert_eq!(
            c.str_op(&StrOp::Upper).unwrap().get(1),
            Scalar::Str("WORLD".into())
        );
        assert_eq!(c.str_op(&StrOp::Len).unwrap().get(0), Scalar::Int(5));
        let m = c.str_op(&StrOp::Contains("orl".into())).unwrap();
        assert_eq!(m.get(0), Scalar::Bool(false));
        assert_eq!(m.get(1), Scalar::Bool(true));
        let m = c.str_op(&StrOp::StartsWith("He".into())).unwrap();
        assert_eq!(m.get(0), Scalar::Bool(true));
    }

    #[test]
    fn reductions() {
        let c = int_col();
        assert_eq!(c.sum(), Scalar::Int(14));
        assert_eq!(c.mean(), Scalar::Float(2.8));
        assert_eq!(c.min(), Scalar::Int(1));
        assert_eq!(c.max(), Scalar::Int(5));
        assert_eq!(c.count(), Scalar::Int(5));
        assert_eq!(c.nunique(), Scalar::Int(4));
        let with_null = Column::from_opt_f64(vec![Some(2.0), None, Some(4.0)]);
        assert_eq!(with_null.sum(), Scalar::Float(6.0));
        assert_eq!(with_null.mean(), Scalar::Float(3.0));
        assert_eq!(with_null.count(), Scalar::Int(2));
        let empty = Column::from_f64(vec![]);
        assert_eq!(empty.sum(), Scalar::Null);
        assert_eq!(empty.mean(), Scalar::Null);
    }

    #[test]
    fn std_matches_sample_formula() {
        let c = Column::from_f64(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        if let Scalar::Float(s) = c.std() {
            assert!((s - 2.138089935299395).abs() < 1e-12);
        } else {
            panic!("std should be float");
        }
        assert_eq!(Column::from_f64(vec![1.0]).std(), Scalar::Null);
    }

    #[test]
    fn concat_same_and_mismatched() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![3]);
        assert_eq!(a.concat(&b).unwrap(), Column::from_i64(vec![1, 2, 3]));
        assert!(a.concat(&Column::from_strings(vec!["x"])).is_err());
    }

    #[test]
    fn hashing_distinguishes_rows() {
        let c = Column::from_strings(vec!["a", "b", "a"]);
        let mut h = vec![0u64; 3];
        c.hash_into(&mut h);
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
        // combined with a second column the tuples (a,1) (b,1) (a,2) differ
        let c2 = Column::from_i64(vec![1, 1, 2]);
        c2.hash_into(&mut h);
        assert_ne!(h[0], h[2]);
    }

    #[test]
    fn builder_coerces_and_rejects() {
        let mut b = ColumnBuilder::new(DType::Float64);
        b.push_scalar(&Scalar::Int(1)).unwrap();
        b.push_scalar(&Scalar::Float(2.5)).unwrap();
        b.push_null();
        let col = b.finish();
        assert_eq!(col.dtype(), DType::Float64);
        assert_eq!(col.get(0), Scalar::Float(1.0));
        assert!(col.is_null_at(2));

        let mut b = ColumnBuilder::new(DType::Int64);
        assert!(b.push_scalar(&Scalar::Str("abc".into())).is_err());
    }

    #[test]
    fn full_column_from_scalar() {
        let c = Column::full(3, &Scalar::Str("x".into()));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), Scalar::Str("x".into()));
        let n = Column::full(2, &Scalar::Null);
        assert_eq!(n.count_null(), 2);
    }

    #[test]
    fn arith_propagates_nulls_int() {
        let a = Column::from_opt_i64(vec![Some(10), None, Some(30)]);
        let b = Column::from_opt_i64(vec![Some(1), Some(2), None]);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Mod] {
            let out = a.arith(op, &b).unwrap();
            assert_eq!(out.dtype(), DType::Int64, "{op:?} keeps int dtype");
            assert!(!out.is_null_at(0), "{op:?} valid op valid");
            assert!(out.is_null_at(1), "{op:?} null lhs propagates");
            assert!(out.is_null_at(2), "{op:?} null rhs propagates");
        }
        // Scalar variants propagate the same way.
        let out = a.arith_scalar(ArithOp::Add, &Scalar::Int(5)).unwrap();
        assert_eq!(out.get(0), Scalar::Int(15));
        assert!(out.is_null_at(1));
    }

    #[test]
    fn arith_propagates_nulls_float() {
        // Division always produces float; nulls become NaN (= null).
        let a = Column::from_opt_i64(vec![Some(10), None]);
        let out = a.arith_scalar(ArithOp::Div, &Scalar::Int(4)).unwrap();
        assert_eq!(out.dtype(), DType::Float64);
        assert_eq!(out.get(0), Scalar::Float(2.5));
        assert!(out.is_null_at(1));
        // NaN inputs count as null and stay null through arithmetic.
        let f = Column::from_f64(vec![1.5, f64::NAN]);
        let out = f.arith_scalar(ArithOp::Mul, &Scalar::Float(2.0)).unwrap();
        assert_eq!(out.get(0), Scalar::Float(3.0));
        assert!(out.is_null_at(1));
    }

    #[test]
    fn mod_by_zero_is_null() {
        let a = Column::from_i64(vec![7, 9]);
        let z = Column::from_i64(vec![0, 2]);
        let out = a.arith(ArithOp::Mod, &z).unwrap();
        assert!(out.is_null_at(0), "x % 0 is null, not a panic");
        assert_eq!(out.get(1), Scalar::Int(1));
        let out = a.arith_scalar(ArithOp::Mod, &Scalar::Int(0)).unwrap();
        assert_eq!(out.count_null(), 2);
    }

    #[test]
    fn compare_columns_with_nulls() {
        let a = Column::from_opt_i64(vec![Some(1), None, Some(3), None]);
        let b = Column::from_opt_i64(vec![Some(1), Some(2), None, None]);
        // Null on either side: every comparison is false except `!=`.
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let m = a.compare(op, &b).unwrap();
            assert!(!m.get(1), "{op:?} with null lhs");
            assert!(!m.get(2), "{op:?} with null rhs");
            assert!(!m.get(3), "{op:?} with both null");
        }
        let ne = a.compare(CmpOp::Ne, &b).unwrap();
        assert_eq!(ne, Bitmap::from_bools(&[false, true, true, true]));
        let eq = a.compare(CmpOp::Eq, &b).unwrap();
        assert_eq!(eq, Bitmap::from_bools(&[true, false, false, false]));
    }

    #[test]
    fn compare_scalar_float_nan_lhs() {
        // The Float64 fast path must treat NaN cells as null.
        let c = Column::from_f64(vec![1.0, f64::NAN, -2.0]);
        let m = c.compare_scalar(CmpOp::Lt, &Scalar::Float(0.0)).unwrap();
        assert_eq!(m, Bitmap::from_bools(&[false, false, true]));
        let m = c.compare_scalar(CmpOp::Ne, &Scalar::Float(1.0)).unwrap();
        assert_eq!(m, Bitmap::from_bools(&[false, true, true]));
    }

    #[test]
    fn compare_scalar_null_rhs() {
        let c = int_col();
        let m = c.compare_scalar(CmpOp::Eq, &Scalar::Null).unwrap();
        assert_eq!(m.count_set(), 0);
        let m = c.compare_scalar(CmpOp::Ne, &Scalar::Null).unwrap();
        assert_eq!(m.count_set(), c.len());
    }

    #[test]
    fn sum_and_mean_skip_nulls() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(5)]);
        assert_eq!(c.sum(), Scalar::Int(6));
        assert_eq!(c.mean(), Scalar::Float(3.0));
        assert_eq!(c.count(), Scalar::Int(2));
    }
}
