//! Microbenchmarks of the columnar substrate kernels: the CSV scan with
//! and without projection (the mechanism behind §3.1's wins), filters,
//! group-by and the hash join.

use criterion::{criterion_group, criterion_main, Criterion};
use lafp_bench::datagen::{ensure_datasets, Size};
use lafp_columnar::csv::{read_csv, CsvOptions};
use lafp_columnar::groupby::{group_by, GroupBySpec};
use lafp_columnar::join::{merge, JoinKind};
use lafp_columnar::AggKind;
use lafp_expr::Expr;
use std::hint::black_box;

fn data_dir() -> std::path::PathBuf {
    ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small).unwrap()
}

fn bench_scan(c: &mut Criterion) {
    let dir = data_dir();
    let path = dir.join("nyt.csv");
    let mut g = c.benchmark_group("csv_scan");
    g.sample_size(10);
    g.bench_function("all_22_columns", |b| {
        b.iter(|| black_box(read_csv(&path, &CsvOptions::new()).unwrap()))
    });
    let projected = CsvOptions::new().with_usecols(vec![
        "fare_amount".into(),
        "passenger_count".into(),
        "tpep_pickup_datetime".into(),
    ]);
    g.bench_function("usecols_3_columns", |b| {
        b.iter(|| black_box(read_csv(&path, &projected).unwrap()))
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let dir = data_dir();
    let df = read_csv(&dir.join("nyt.csv"), &CsvOptions::new()).unwrap();
    let mut g = c.benchmark_group("kernels");
    g.sample_size(20);
    let pred = Expr::col("fare_amount").gt(Expr::lit_float(0.0));
    g.bench_function("filter", |b| {
        b.iter(|| black_box(df.filter(&pred.evaluate_mask(&df).unwrap()).unwrap()))
    });
    let spec = GroupBySpec {
        keys: vec!["passenger_count".into()],
        value: "fare_amount".into(),
        agg: AggKind::Sum,
    };
    g.bench_function("group_by", |b| b.iter(|| black_box(group_by(&df, &spec).unwrap())));
    let ratings = read_csv(&dir.join("mov.csv"), &CsvOptions::new()).unwrap();
    let titles = read_csv(&dir.join("mov_titles.csv"), &CsvOptions::new()).unwrap();
    g.bench_function("hash_join", |b| {
        b.iter(|| {
            black_box(merge(&ratings, &titles, &["movie_id".into()], JoinKind::Inner).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scan, bench_kernels);
criterion_main!(benches);
