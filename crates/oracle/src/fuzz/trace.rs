//! The fuzz trace: frame-generation plans plus an op sequence, with a
//! total byte codec.
//!
//! A trace is decoded from an arbitrary byte string — every byte string
//! is a valid trace (out-of-range values wrap modulo their domain,
//! exhausted input reads as zero), so seeded random bytes, shrunk
//! traces, and hand-written replay strings all go through the same
//! door. `encode` emits the canonical byte form; `decode(encode(t)) ==
//! t` for every trace produced by `decode` or by the shrinker.

/// Maximum rows a frame plan may request (caps replay input, covers the
/// 64 Ki morsel seam with room to spare).
pub const MAX_ROWS: u32 = 100_000;
/// Maximum rows an auxiliary (join-side) frame plan may request.
pub const MAX_AUX_ROWS: u32 = 256;
/// Maximum columns in the main frame plan.
pub const MAX_COLS: usize = 6;
/// Maximum columns in the auxiliary frame plan.
pub const MAX_AUX_COLS: usize = 4;
/// Maximum ops per trace.
pub const MAX_OPS: usize = 12;
/// Row cap applied after growth ops (join, concat) so low-cardinality
/// join keys cannot blow a trace up quadratically.
pub const GROWTH_CAP: usize = 1 << 18;

/// Number of distinct opcodes in the alphabet.
pub const NUM_OPCODES: u8 = 14;

/// Logical column dtypes the generator can plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// 64-bit integers.
    I64,
    /// 64-bit floats (generated as exact quarters so re-association in
    /// parallel sums stays within the 1e-12 relative tolerance).
    F64,
    /// Booleans.
    Bool,
    /// Strings (`s0`, `s1`, ... over the cardinality bucket).
    Utf8,
    /// Datetimes (whole days as epoch seconds).
    Datetime,
}

impl ColKind {
    /// Total decode from a byte.
    pub fn from_byte(b: u8) -> ColKind {
        match b % 5 {
            0 => ColKind::I64,
            1 => ColKind::F64,
            2 => ColKind::Bool,
            3 => ColKind::Utf8,
            _ => ColKind::Datetime,
        }
    }

    /// Canonical byte for [`Self::from_byte`].
    pub fn to_byte(self) -> u8 {
        match self {
            ColKind::I64 => 0,
            ColKind::F64 => 1,
            ColKind::Bool => 2,
            ColKind::Utf8 => 3,
            ColKind::Datetime => 4,
        }
    }
}

/// Physical encoding requested for the engine-side copy of a column
/// (the oracle always holds the plain twin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enc {
    /// Plain storage.
    Plain,
    /// Dictionary encoding (effective for Utf8 columns; others stay
    /// plain).
    Dict,
    /// Forced run-length encoding (no shrink gate).
    Rle,
}

impl Enc {
    /// Total decode from a byte.
    pub fn from_byte(b: u8) -> Enc {
        match b % 3 {
            0 => Enc::Plain,
            1 => Enc::Dict,
            _ => Enc::Rle,
        }
    }

    /// Canonical byte for [`Self::from_byte`].
    pub fn to_byte(self) -> u8 {
        match self {
            Enc::Plain => 0,
            Enc::Dict => 1,
            Enc::Rle => 2,
        }
    }
}

/// One planned column: dtype, null density, value cardinality bucket,
/// engine-side encoding, and a value-stream salt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColPlan {
    /// Logical dtype.
    pub kind: ColKind,
    /// Null density: 0 = no nulls, else roughly one row in `null_every`
    /// is null.
    pub null_every: u8,
    /// Cardinality bucket index (see `CARDS` in the generator).
    pub card: u8,
    /// Engine-side encoding.
    pub enc: Enc,
    /// Per-column salt for the deterministic value stream.
    pub salt: u8,
}

/// One planned frame: a row count and its columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramePlan {
    /// Row count (already capped by the codec).
    pub rows: u32,
    /// Column plans; names are assigned positionally (`c0`, `c1`, ...).
    pub cols: Vec<ColPlan>,
}

/// One op as decoded: an opcode plus three raw operand bytes. The
/// interpretation of the operands (which column, which comparison,
/// which literal) is resolved against the live schema at execution
/// time, so any operand bytes are valid for any schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawOp {
    /// Opcode, already reduced modulo [`NUM_OPCODES`].
    pub code: u8,
    /// First operand byte (usually a column selector).
    pub a: u8,
    /// Second operand byte (usually a second column / comparison / agg).
    pub b: u8,
    /// Third operand byte (usually a literal seed).
    pub c: u8,
}

/// A complete fuzz case: the main frame, the auxiliary (join-side)
/// frame, whether the main frame routes through a CSV file, and the op
/// sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The main frame plan.
    pub main: FramePlan,
    /// The auxiliary frame plan (join/concat partner).
    pub aux: FramePlan,
    /// Route the main frame through a temp CSV: the oracle reads it
    /// with the seed reader, the engine with `read_csv` (exercising
    /// ingest dtype inference and auto-encoding, and therefore the
    /// `LAFP_NO_ENCODE` config axis).
    pub via_csv: bool,
    /// The op sequence.
    pub ops: Vec<RawOp>,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes([self.u8(), self.u8(), self.u8(), self.u8()])
    }
}

fn decode_col(r: &mut Reader<'_>) -> ColPlan {
    ColPlan {
        kind: ColKind::from_byte(r.u8()),
        null_every: r.u8() % 17,
        card: r.u8() % 6,
        enc: Enc::from_byte(r.u8()),
        salt: r.u8(),
    }
}

/// Decode a trace from any byte string (total: wraps out-of-range
/// values, reads zeros past the end).
pub fn decode(bytes: &[u8]) -> Trace {
    let r = &mut Reader { bytes, pos: 0 };
    let n_main = 1 + (r.u8() as usize) % MAX_COLS;
    let n_aux = 1 + (r.u8() as usize) % MAX_AUX_COLS;
    let main_rows = r.u32() % (MAX_ROWS + 1);
    let aux_rows = r.u32() % (MAX_AUX_ROWS + 1);
    let via_csv = r.u8() % 2 == 1;
    let mut main = FramePlan {
        rows: main_rows,
        cols: (0..n_main).map(|_| decode_col(r)).collect(),
    };
    let mut aux = FramePlan {
        rows: aux_rows,
        cols: (0..n_aux).map(|_| decode_col(r)).collect(),
    };
    // Normalizations (part of decoding so the stored trace is already
    // canonical and `decode(encode(t)) == t` holds):
    // the join key column pair (`c0` on both sides) shares one dtype —
    // cross-dtype canonical keys are outside the frozen seed semantics;
    // CSV-routed frames avoid Datetime (scalar rendering is not the CSV
    // datetime parse format) and always store plain (the engine-side
    // representation comes from ingest auto-encoding instead).
    aux.cols[0].kind = main.cols[0].kind;
    if via_csv {
        for c in &mut main.cols {
            if c.kind == ColKind::Datetime {
                c.kind = ColKind::I64;
            }
            c.enc = Enc::Plain;
        }
        aux.cols[0].kind = main.cols[0].kind;
    }
    let n_ops = (r.u8() as usize) % (MAX_OPS + 1);
    let ops = (0..n_ops)
        .map(|_| RawOp {
            code: r.u8() % NUM_OPCODES,
            a: r.u8(),
            b: r.u8(),
            c: r.u8(),
        })
        .collect();
    Trace {
        main,
        aux,
        via_csv,
        ops,
    }
}

fn encode_col(out: &mut Vec<u8>, c: &ColPlan) {
    out.push(c.kind.to_byte());
    out.push(c.null_every % 17);
    out.push(c.card % 6);
    out.push(c.enc.to_byte());
    out.push(c.salt);
}

/// Canonical byte form of a trace. For traces produced by [`decode`]
/// (or shrunk from one), `decode(encode(t)) == t`.
pub fn encode(t: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(((t.main.cols.len().clamp(1, MAX_COLS) - 1) % MAX_COLS) as u8);
    out.push(((t.aux.cols.len().clamp(1, MAX_AUX_COLS) - 1) % MAX_AUX_COLS) as u8);
    out.extend_from_slice(&(t.main.rows % (MAX_ROWS + 1)).to_le_bytes());
    out.extend_from_slice(&(t.aux.rows % (MAX_AUX_ROWS + 1)).to_le_bytes());
    out.push(t.via_csv as u8);
    for c in &t.main.cols {
        encode_col(&mut out, c);
    }
    for c in &t.aux.cols {
        encode_col(&mut out, c);
    }
    out.push((t.ops.len() % (MAX_OPS + 1)) as u8);
    for op in &t.ops {
        out.push(op.code % NUM_OPCODES);
        out.push(op.a);
        out.push(op.b);
        out.push(op.c);
    }
    out
}

/// Render bytes as the replay hex string.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parse a replay hex string (whitespace tolerated). `None` on a
/// non-hex character or odd digit count.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let digits: Vec<u32> = s
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_digit(16))
        .collect::<Option<_>>()?;
    if !digits.len().is_multiple_of(2) {
        return None;
    }
    Some(
        digits
            .chunks(2)
            .map(|p| (p[0] * 16 + p[1]) as u8)
            .collect(),
    )
}
