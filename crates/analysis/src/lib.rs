//! # lafp-analysis — dataflow analyses over the SCIRPy-style CFG
//!
//! Implements the static analyses of paper §3 on PandaScript CFGs:
//!
//! * **Dataframe-variable inference** ([`dfvars`]) — which variables hold
//!   dataframes / series / scalars, which imports are external modules
//!   (§3.4), and which columns a dataframe ever assigns (the read-only
//!   check of §3.6).
//! * **Live Variable Analysis** ([`lva`]) — classic backward liveness,
//!   provided by Soot in the paper.
//! * **Live Attribute Analysis** ([`laa`], §3.1) — per-column liveness
//!   with the paper's Gen/Kill equations (Eq. 1–4): whole-frame uses make
//!   all columns live, definitions kill, derived frames propagate liveness
//!   to their sources, aggregates kill all but the grouped/aggregated
//!   columns, and the `head`/`info`/`describe` heuristic ignores their
//!   attribute usage.
//! * **Live DataFrame Analysis** ([`lda`], §3.5) — which dataframes are
//!   live after a program point (the `live_df` argument of forced
//!   computes).
//!
//! All analyses run on a statement-level program-point lattice: a point is
//! (block, index) where index ranges over the block's statements plus its
//! terminator.

#![warn(missing_docs)]

pub mod dataflow;
pub mod dfvars;
pub mod laa;
pub mod lda;
pub mod lva;

pub use dfvars::{DfVarInfo, VarKind};
pub use laa::{ColSet, LaaResult};
pub use lda::LdaResult;
pub use lva::LvaResult;
