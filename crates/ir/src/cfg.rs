//! The SCIRPy-analog control-flow graph: basic blocks of statement units
//! with explicit branch/loop terminators (paper §2.2).

use crate::ast::StmtId;

/// Index of a basic block.
pub type BlockId = usize;

/// A basic block: straight-line simple statements plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Simple statements (imports, assigns, expression statements).
    pub stmts: Vec<StmtId>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on the condition of the referenced `If` statement.
    Branch {
        /// The `If` statement (condition lives in the AST).
        stmt: StmtId,
        /// Condition-true successor.
        then_blk: BlockId,
        /// Condition-false successor.
        else_blk: BlockId,
    },
    /// Loop header of the referenced `For` statement: iterate or exit.
    LoopBranch {
        /// The `For` statement (loop var + iterable live in the AST).
        stmt: StmtId,
        /// Loop body entry.
        body: BlockId,
        /// Loop exit.
        exit: BlockId,
    },
    /// Program exit.
    End,
}

/// The control-flow graph of one PandaScript module.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// All basic blocks.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Cfg {
    /// Add an empty block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            stmts: Vec::new(),
            terminator: Terminator::End,
        });
        self.blocks.len() - 1
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match &self.blocks[b].terminator {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::LoopBranch { body, exit, .. } => vec![*body, *exit],
            Terminator::End => vec![],
        }
    }

    /// Predecessor blocks of `b` (computed by scan; graphs are small).
    pub fn predecessors(&self, b: BlockId) -> Vec<BlockId> {
        (0..self.blocks.len())
            .filter(|&p| self.successors(p).contains(&b))
            .collect()
    }

    /// Blocks in reverse postorder from the entry (good order for forward
    /// dataflow; reverse it for backward analyses).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some((b, child)) = stack.pop() {
            let succs = self.successors(b);
            if child < succs.len() {
                stack.push((b, child + 1));
                let s = succs[child];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Render a compact textual form (for tests and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!("B{i}: stmts={:?} ", b.stmts));
            out.push_str(&match &b.terminator {
                Terminator::Jump(t) => format!("jump B{t}"),
                Terminator::Branch {
                    then_blk, else_blk, ..
                } => format!("branch B{then_blk} B{else_blk}"),
                Terminator::LoopBranch { body, exit, .. } => {
                    format!("loop B{body} exit B{exit}")
                }
                Terminator::End => "end".into(),
            });
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    #[test]
    fn straight_line_is_one_block() {
        let ast = parse("x = 1\ny = 2\nz = 3\n").unwrap();
        let cfg = lower(&ast);
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.successors(cfg.entry), vec![] as Vec<BlockId>);
    }

    #[test]
    fn if_makes_diamond() {
        let ast = parse("if x > 0:\n    y = 1\nelse:\n    y = 2\nz = 3\n").unwrap();
        let cfg = lower(&ast);
        let succs = cfg.successors(cfg.entry);
        assert_eq!(succs.len(), 2, "branch out of entry");
        // Both arms join at the same block.
        let j1 = cfg.successors(succs[0]);
        let j2 = cfg.successors(succs[1]);
        assert_eq!(j1, j2);
        assert_eq!(cfg.predecessors(j1[0]).len(), 2);
    }

    #[test]
    fn for_makes_back_edge() {
        let ast = parse("for i in xs:\n    y = i\nz = 1\n").unwrap();
        let cfg = lower(&ast);
        // Find the loop header.
        let header = (0..cfg.blocks.len())
            .find(|&b| matches!(cfg.blocks[b].terminator, Terminator::LoopBranch { .. }))
            .expect("loop header exists");
        let (body, exit) = match cfg.blocks[header].terminator {
            Terminator::LoopBranch { body, exit, .. } => (body, exit),
            _ => unreachable!(),
        };
        // Body jumps back to the header.
        assert_eq!(cfg.successors(body), vec![header]);
        assert!(cfg.blocks[exit].stmts.len() == 1);
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let ast = parse("if x > 0:\n    y = 1\nz = 2\n").unwrap();
        let cfg = lower(&ast);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        assert_eq!(rpo.len(), cfg.blocks.len());
    }

    #[test]
    fn render_is_compact() {
        let ast = parse("x = 1\n").unwrap();
        let cfg = lower(&ast);
        assert!(cfg.render().contains("B0"));
    }
}
