//! Bit-packed boolean masks, used both as validity (null) masks and as
//! filter masks.

use crate::HeapSize;

/// A growable bit-packed bitmap of fixed logical length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create a bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![fill; nwords],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Create an empty bitmap.
    pub fn empty() -> Self {
        Bitmap {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        Self::from_iter(bools.iter().copied())
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let i = self.len - 1;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Reserve room for `additional` more bits.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.len + additional).div_ceil(64);
        self.words.reserve(needed.saturating_sub(self.words.len()));
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// True if no bit is set.
    pub fn none_set(&self) -> bool {
        self.count_set() == 0
    }

    /// Bitwise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// In-place bitwise AND with an equal-length bitmap. The fused
    /// operator chains accumulate successive filter predicates into one
    /// selection bitmap this way, without allocating per predicate.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Bitwise OR of two equal-length bitmaps.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bitmap {
        let words = self.words.iter().map(|w| !w).collect();
        let mut bm = Bitmap {
            words,
            len: self.len,
        };
        bm.mask_tail();
        bm
    }

    /// Iterate over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set bits, ascending.
    pub fn set_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_set());
        self.for_each_set(|i| out.push(i));
        out
    }

    /// Call `f` with each set-bit index, ascending, one word at a time —
    /// the compaction driver for filter kernels, which avoids
    /// materializing an index vector.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Call `f` with each maximal run of consecutive set bits as
    /// `(start, len)`, ascending. This is the run-aligned analogue of
    /// [`Bitmap::for_each_set`]: RLE-aware kernels use it to touch each
    /// surviving run once instead of every bit, and all-set / all-clear
    /// words are consumed in one step.
    #[inline]
    pub fn for_each_set_run(&self, mut f: impl FnMut(usize, usize)) {
        let mut run_start = 0usize;
        let mut run_len = 0usize;
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                if run_len > 0 {
                    f(run_start, run_len);
                    run_len = 0;
                }
                continue;
            }
            if word == u64::MAX {
                if run_len > 0 && run_start + run_len == wi * 64 {
                    run_len += 64;
                } else {
                    if run_len > 0 {
                        f(run_start, run_len);
                    }
                    run_start = wi * 64;
                    run_len = 64;
                }
                continue;
            }
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                let ones = (w >> bit).trailing_ones() as usize;
                let abs = wi * 64 + bit;
                if run_len > 0 && run_start + run_len == abs {
                    run_len += ones;
                } else {
                    if run_len > 0 {
                        f(run_start, run_len);
                    }
                    run_start = abs;
                    run_len = ones;
                }
                if bit + ones >= 64 {
                    w = 0;
                } else {
                    w &= !0u64 << (bit + ones);
                }
            }
        }
        if run_len > 0 {
            f(run_start, run_len);
        }
    }

    /// Number of set bits in `[start, end)`. Word-parallel (one popcount
    /// per touched word); the RLE filter kernel uses this to size each
    /// surviving run without visiting individual bits.
    pub fn count_range(&self, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len,
            "count_range [{start}, {end}) out of bounds (len {})",
            self.len
        );
        if start == end {
            return 0;
        }
        let ws = start / 64;
        let we = (end - 1) / 64;
        let lo_mask = !0u64 << (start % 64);
        let hi_rem = end % 64;
        let hi_mask = if hi_rem == 0 {
            !0u64
        } else {
            (1u64 << hi_rem) - 1
        };
        if ws == we {
            (self.words[ws] & lo_mask & hi_mask).count_ones() as usize
        } else {
            let mut n = (self.words[ws] & lo_mask).count_ones() as usize;
            for w in &self.words[ws + 1..we] {
                n += w.count_ones() as usize;
            }
            n + (self.words[we] & hi_mask).count_ones() as usize
        }
    }

    /// Select the bits at `indices` into a new bitmap (gather). Output
    /// words are assembled in a register and flushed one word at a time —
    /// no per-bit `push` bookkeeping.
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        self.take_idx(indices)
    }

    /// [`Bitmap::take`] generic over the index width (see
    /// [`crate::column::IndexLike`]).
    pub(crate) fn take_idx<I: crate::column::IndexLike>(&self, indices: &[I]) -> Bitmap {
        let mut out = BitWriter::with_capacity(indices.len());
        for &i in indices {
            out.append_bit(self.get(i.idx()));
        }
        out.finish()
    }

    /// Keep only the bits where `mask` is set (compaction by filter mask).
    /// Runs word-parallel: all-set and all-clear mask words are handled in
    /// one step, and partial words compact via a software bit-extract
    /// instead of one `push` per surviving bit.
    pub fn filter(&self, mask: &Bitmap) -> Bitmap {
        assert_eq!(self.len, mask.len, "bitmap length mismatch");
        let mut out = BitWriter::with_capacity(mask.count_set());
        for (wi, &m) in mask.words.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let data = self.words[wi];
            // The tail word's mask bits past `len` are already zero
            // (mask_tail invariant), so a full mask word is always a full
            // 64-bit run of kept data.
            if m == u64::MAX {
                out.append_word(data, 64);
            } else {
                let (compacted, kept) = extract_bits(data, m);
                out.append_word(compacted, kept);
            }
        }
        out.finish()
    }

    /// Concatenate `other` onto the end of `self` (word-at-a-time: each
    /// appended word is spliced in with two shifts, not 64 pushes).
    pub fn extend_from(&mut self, other: &Bitmap) {
        let mut w = BitWriter::from_bitmap(std::mem::replace(self, Bitmap::empty()));
        let mut remaining = other.len;
        for &word in &other.words {
            let n = remaining.min(64);
            w.append_word(word, n);
            remaining -= n;
        }
        *self = w.finish();
    }

    /// Contiguous sub-range `[offset, offset + len)`. Word-at-a-time: each
    /// output word is stitched from (at most) two input words, so slicing
    /// costs O(len / 64) instead of one bit test per row.
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(offset + len <= self.len, "slice out of bounds");
        let nwords = len.div_ceil(64);
        let base = offset / 64;
        let shift = offset % 64;
        let mut words = Vec::with_capacity(nwords);
        for w in 0..nwords {
            let lo = self.words.get(base + w).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words.get(base + w + 1).copied().unwrap_or(0) << (64 - shift)
            };
            words.push(lo | hi);
        }
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        bm
    }

    /// The backing 64-bit words (bit `i` lives at `words[i / 64]`, low bit
    /// first). Exposed for serialization; tail bits past `len` are zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from raw words and a logical length, re-masking any
    /// tail bits. Panics if `words` is not exactly `len.div_ceil(64)` words
    /// long (callers deserializing untrusted input must validate first).
    pub fn from_words(words: Vec<u64>, len: usize) -> Bitmap {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count does not match bitmap length"
        );
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        bm
    }

    /// Zero any bits beyond the logical length in the final word so that
    /// popcount-based operations stay correct.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Software bit-extract (`pext`): compact the bits of `value` selected by
/// `mask` into the low bits of the result; returns `(compacted, count)`.
#[inline]
fn extract_bits(value: u64, mut mask: u64) -> (u64, usize) {
    let mut out = 0u64;
    let mut k = 0usize;
    while mask != 0 {
        let bit = mask.trailing_zeros() as u64;
        out |= ((value >> bit) & 1) << k;
        k += 1;
        mask &= mask - 1;
    }
    (out, k)
}

/// Word-buffered bitmap writer: bits accumulate in a register word and
/// flush 64 at a time, so bulk builders skip `push`'s per-bit branch and
/// bounds checks.
pub struct BitWriter {
    /// Completed 64-bit words.
    words: Vec<u64>,
    /// The partial word being assembled.
    acc: u64,
    /// Bits currently in `acc` (always < 64 between calls).
    nbits: usize,
}

impl BitWriter {
    /// Writer with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> BitWriter {
        BitWriter {
            words: Vec::with_capacity(bits.div_ceil(64)),
            acc: 0,
            nbits: 0,
        }
    }

    /// Resume writing at the end of an existing bitmap (its last partial
    /// word, if any, becomes the accumulator).
    fn from_bitmap(bm: Bitmap) -> BitWriter {
        let nbits = bm.len % 64;
        let mut words = bm.words;
        let acc = if nbits > 0 {
            words.pop().unwrap_or(0)
        } else {
            0
        };
        BitWriter { words, acc, nbits }
    }

    /// Append one bit.
    #[inline]
    pub fn append_bit(&mut self, value: bool) {
        self.acc |= (value as u64) << self.nbits;
        self.nbits += 1;
        if self.nbits == 64 {
            self.words.push(self.acc);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Append the low `n` bits of `word`.
    #[inline]
    pub fn append_word(&mut self, word: u64, n: usize) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let word = if n == 64 { word } else { word & ((1u64 << n) - 1) };
        self.acc |= word << self.nbits;
        if self.nbits + n >= 64 {
            self.words.push(self.acc);
            let consumed = 64 - self.nbits;
            self.acc = if consumed == 64 { 0 } else { word >> consumed };
            self.nbits = self.nbits + n - 64;
        } else {
            self.nbits += n;
        }
    }

    /// Append `len` copies of `value` (a run), 64 bits at a time.
    #[inline]
    pub fn append_run(&mut self, value: bool, mut len: usize) {
        let word = if value { u64::MAX } else { 0 };
        while len > 64 {
            self.append_word(word, 64);
            len -= 64;
        }
        if len > 0 {
            self.append_word(word, len);
        }
    }

    /// Finish into a [`Bitmap`].
    pub fn finish(mut self) -> Bitmap {
        let len = self.words.len() * 64 + self.nbits;
        if self.nbits > 0 {
            self.words.push(self.acc);
        }
        Bitmap {
            words: self.words,
            len,
        }
    }
}

impl HeapSize for Bitmap {
    fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap::empty();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_all_true_and_false() {
        let t = Bitmap::new(70, true);
        assert_eq!(t.len(), 70);
        assert_eq!(t.count_set(), 70);
        assert!(t.all_set());
        let f = Bitmap::new(70, false);
        assert!(f.none_set());
    }

    #[test]
    fn push_get_set() {
        let mut bm = Bitmap::empty();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(
            a.and(&b),
            Bitmap::from_bools(&[true, false, false, false])
        );
        assert_eq!(a.or(&b), Bitmap::from_bools(&[true, true, true, false]));
        assert_eq!(a.not(), Bitmap::from_bools(&[false, false, true, true]));
    }

    #[test]
    fn not_masks_tail_bits() {
        // A 3-bit bitmap's NOT must not leak set bits past the length.
        let a = Bitmap::from_bools(&[false, false, false]);
        let n = a.not();
        assert_eq!(n.count_set(), 3);
        assert!(n.all_set());
    }

    #[test]
    fn set_indices_and_take() {
        let bm = Bitmap::from_bools(&[true, false, true, false, true]);
        assert_eq!(bm.set_indices(), vec![0, 2, 4]);
        let taken = bm.take(&[4, 1, 0]);
        assert_eq!(taken, Bitmap::from_bools(&[true, false, true]));
    }

    #[test]
    fn filter_compacts() {
        let data = Bitmap::from_bools(&[true, true, false, false]);
        let mask = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(data.filter(&mask), Bitmap::from_bools(&[true, false]));
    }

    #[test]
    fn slice_and_extend() {
        let mut a = Bitmap::from_bools(&[true, false, true]);
        let b = Bitmap::from_bools(&[false, true]);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.slice(2, 3), Bitmap::from_bools(&[true, false, true]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new(4, true).get(4);
    }

    #[test]
    fn words_round_trip() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bm = Bitmap::from_iter((0..len).map(|i| i % 3 == 0));
            let back = Bitmap::from_words(bm.as_words().to_vec(), len);
            assert_eq!(back, bm, "len {len}");
        }
        // Dirty tail bits are re-masked on the way in.
        let back = Bitmap::from_words(vec![u64::MAX], 3);
        assert_eq!(back.count_set(), 3);
    }

    #[test]
    fn crossing_word_boundaries() {
        let bools: Vec<bool> = (0..130).map(|i| i % 2 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        assert_eq!(bm.count_set(), 65);
        assert_eq!(bm.set_indices().len(), 65);
        assert_eq!(bm.slice(63, 4), Bitmap::from_bools(&[false, true, false, true]));
    }

    /// The lengths where bit-packing bugs live: empty, one short of a word,
    /// exactly one word, one past a word.
    #[test]
    fn word_boundary_lengths() {
        for len in [0usize, 63, 64, 65] {
            let t = Bitmap::new(len, true);
            assert_eq!(t.len(), len, "len {len}");
            assert_eq!(t.count_set(), len, "count_set at len {len}");
            assert!(t.all_set(), "all_set at len {len}");
            assert_eq!(t.not().count_set(), 0, "NOT leaks tail bits at {len}");

            let f = Bitmap::new(len, false);
            assert!(f.none_set(), "none_set at len {len}");
            assert_eq!(f.not().count_set(), len, "NOT of empty at len {len}");
            assert!(f.not().all_set() || len == 0, "NOT all_set at len {len}");

            assert_eq!(t.and(&f).count_set(), 0, "AND at len {len}");
            assert_eq!(t.or(&f).count_set(), len, "OR at len {len}");
        }
    }

    #[test]
    fn empty_bitmap_invariants() {
        let e = Bitmap::empty();
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        // Degenerate all/none conventions on the empty mask.
        assert!(e.all_set());
        assert!(e.none_set());
        assert_eq!(e.set_indices(), Vec::<usize>::new());
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.slice(0, 0), Bitmap::empty());
    }

    #[test]
    fn push_across_word_boundary() {
        let mut bm = Bitmap::empty();
        for i in 0..65 {
            bm.push(i >= 63);
            assert_eq!(bm.len(), i + 1);
        }
        assert!(!bm.get(62));
        assert!(bm.get(63));
        assert!(bm.get(64));
        assert_eq!(bm.count_set(), 2);
    }

    #[test]
    fn set_at_word_boundaries() {
        let mut bm = Bitmap::new(65, false);
        for i in [0usize, 63, 64] {
            bm.set(i, true);
            assert!(bm.get(i), "set bit {i}");
        }
        assert_eq!(bm.count_set(), 3);
        bm.set(63, false);
        assert_eq!(bm.count_set(), 2);
    }

    /// The word-parallel filter/take/extend_from must agree with the naive
    /// per-bit definitions at and around word boundaries.
    #[test]
    fn word_parallel_paths_match_naive() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130, 200] {
            let data = Bitmap::from_iter((0..len).map(|i| i % 3 == 0));
            let mask = Bitmap::from_iter((0..len).map(|i| i % 2 == 0 || i % 7 == 0));
            // filter == per-bit compaction
            let expect: Bitmap = (0..len)
                .filter(|&i| mask.get(i))
                .map(|i| data.get(i))
                .collect();
            assert_eq!(data.filter(&mask), expect, "filter len {len}");
            // all-set and all-clear masks
            assert_eq!(data.filter(&Bitmap::new(len, true)), data, "full mask {len}");
            assert_eq!(
                data.filter(&Bitmap::new(len, false)),
                Bitmap::empty(),
                "empty mask {len}"
            );
            // take == per-index gather
            let idx: Vec<usize> = (0..len).rev().collect();
            let taken = data.take(&idx);
            let expect: Bitmap = idx.iter().map(|&i| data.get(i)).collect();
            assert_eq!(taken, expect, "take len {len}");
            // extend_from at every alignment
            for prefix in [0usize, 1, 63, 64, 65] {
                let mut a = Bitmap::from_iter((0..prefix).map(|i| i % 5 == 0));
                let expect: Bitmap = a.iter().chain(data.iter()).collect();
                a.extend_from(&data);
                assert_eq!(a, expect, "extend prefix {prefix} len {len}");
                assert_eq!(a.count_set(), expect.count_set());
            }
        }
    }

    #[test]
    fn bitwriter_append_word_alignments() {
        // Append runs of every length at every starting alignment.
        for start in 0usize..66 {
            for n in [0usize, 1, 7, 63, 64] {
                let mut w = BitWriter::with_capacity(start + n);
                for i in 0..start {
                    w.append_bit(i % 2 == 0);
                }
                w.append_word(u64::MAX, n);
                let bm = w.finish();
                assert_eq!(bm.len(), start + n, "start {start} n {n}");
                for i in 0..start {
                    assert_eq!(bm.get(i), i % 2 == 0, "prefix bit {i}");
                }
                for i in start..start + n {
                    assert!(bm.get(i), "appended bit {i} (start {start} n {n})");
                }
            }
        }
    }

    /// The run iterator must agree with a naive per-bit run scan at every
    /// word alignment, including runs that span word boundaries and
    /// all-set / all-clear whole words.
    #[test]
    fn set_run_iterator_matches_naive() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![],
            vec![true],
            vec![false],
            (0..63).map(|_| true).collect(),
            (0..64).map(|_| true).collect(),
            (0..65).map(|_| true).collect(),
            (0..130).map(|i| i % 2 == 0).collect(),
            (0..200).map(|i| (i / 7) % 2 == 0).collect(),
            (0..192).map(|i| !(60..=130).contains(&i)).collect(),
            (0..300).map(|i| i % 97 < 50).collect(),
        ];
        for bools in patterns {
            let bm = Bitmap::from_bools(&bools);
            let mut got = Vec::new();
            bm.for_each_set_run(|s, l| got.push((s, l)));
            // Naive: scan for maximal runs.
            let mut expect = Vec::new();
            let mut i = 0;
            while i < bools.len() {
                if bools[i] {
                    let s = i;
                    while i < bools.len() && bools[i] {
                        i += 1;
                    }
                    expect.push((s, i - s));
                } else {
                    i += 1;
                }
            }
            assert_eq!(got, expect, "len {}", bools.len());
        }
    }

    #[test]
    fn count_range_matches_naive() {
        let bools: Vec<bool> = (0..300).map(|i| i % 3 == 0 || i % 11 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        for &(s, e) in &[
            (0usize, 0usize),
            (0, 1),
            (0, 300),
            (63, 64),
            (63, 65),
            (64, 128),
            (1, 299),
            (130, 130),
            (200, 257),
        ] {
            let expect = (s..e).filter(|&i| bools[i]).count();
            assert_eq!(bm.count_range(s, e), expect, "[{s}, {e})");
        }
    }

    #[test]
    fn bitwriter_append_run_alignments() {
        for start in [0usize, 1, 63, 64, 65] {
            for len in [0usize, 1, 64, 65, 130] {
                let mut w = BitWriter::with_capacity(start + len);
                for i in 0..start {
                    w.append_bit(i % 2 == 0);
                }
                w.append_run(true, len);
                w.append_run(false, 3);
                let bm = w.finish();
                assert_eq!(bm.len(), start + len + 3);
                assert_eq!(
                    bm.count_range(start, start + len),
                    len,
                    "start {start} len {len}"
                );
                assert_eq!(bm.count_range(start + len, start + len + 3), 0);
            }
        }
    }

    #[test]
    fn slice_at_word_boundaries() {
        let bools: Vec<bool> = (0..65).map(|i| i == 63 || i == 64).collect();
        let bm = Bitmap::from_bools(&bools);
        assert_eq!(bm.slice(0, 0).len(), 0);
        assert_eq!(bm.slice(64, 1), Bitmap::from_bools(&[true]));
        assert_eq!(bm.slice(0, 63).count_set(), 0);
        assert_eq!(bm.slice(63, 2), Bitmap::from_bools(&[true, true]));
    }
}
